// Package pipeline implements TIPSY's data aggregation stage (§4.2 of
// the paper): IPFIX flow records are joined with network metadata
// (destination region and service type) and Geo-IP (source location),
// aggregated into hour-long chunks indexed by exactly the features
// TIPSY uses, and ordinally encoded. Aggregation merely sums bytes
// per (hour, feature tuple, link), so it loses nothing the models
// need while shrinking the data by orders of magnitude.
package pipeline

import (
	"slices"
	"sync"
	"sync/atomic"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/obsv"
	"tipsy/internal/wan"
)

// Metadata resolves a destination address inside the WAN to its
// region and service type.
type Metadata func(dstAddr uint32) (wan.Region, wan.ServiceType, bool)

// TruthSink receives the ground-truth feature records the aggregator
// drains — the (hour, flow, link, bytes) tuples that say where each
// flow aggregate actually ingressed. The online quality monitor
// implements this to join served predictions against reality; the
// aggregator always knew the actual ingress link of every flow, it
// just never fed it back until now. Records arrive in the same
// deterministic order Records returns them.
type TruthSink interface {
	ObserveTruth(rec features.Record)
}

// The aggregator is sharded by source prefix: each shard owns its own
// lock, its own slice of the hourly counter maps, and its own slice of
// the metadata join cache, so concurrent ingest only contends when two
// records hash to the same shard. Eight shards keeps per-(shard, hour)
// maps small enough to stay cache-resident at simulator scale while
// covering typical collector fan-in; the drain re-establishes one
// global deterministic order, so shard count never leaks into output.
const (
	aggShardBits = 3
	aggShards    = 1 << aggShardBits
)

// shardOf places a source /24 prefix on a shard. Fibonacci hashing
// spreads the sequential prefixes simulators generate.
func shardOf(prefix uint32) uint32 {
	return (prefix * 0x9E3779B1) >> (32 - aggShardBits)
}

// joinKey identifies one distinct metadata join: everything the
// joined FlowFeatures depends on. Flow records repeat (src, dst, AS)
// combinations constantly, so caching the join skips the Geo-IP and
// metadata lookups on the hot path.
type joinKey struct {
	prefix uint32
	dst    uint32
	as     uint32
}

// aggShard is one lock's worth of aggregator state. Feature tuples
// are interned per shard: join results resolve to a small feature ID,
// and the hourly counters are keyed by the packed (feature ID, link)
// uint64 — integer-keyed map operations are several times cheaper
// than hashing the full feature struct per record. Interning
// deduplicates by feature value, so two joins that land on the same
// feature tuple (different destination addresses with the same
// region and service) share one ID and therefore one accumulator,
// exactly as a struct-keyed map would.
type aggShard struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	join map[joinKey]int32 // -1: destination has no metadata, drop
	// feats maps feature ID back to the tuple; featIndex dedupes
	// tuples on join misses. feats entries are immutable once
	// appended, so a slice header captured under the lock stays
	// valid after release.
	//tipsy:guardedby mu
	feats []features.FlowFeatures
	//tipsy:guardedby mu
	featIndex map[features.FlowFeatures]int32
	//tipsy:guardedby mu
	hours map[wan.Hour]map[uint64]float64
	// curHour/cur cache the last hour's counter map: records arrive
	// in long same-hour runs, so the hours lookup almost always skips.
	//tipsy:guardedby mu
	curHour wan.Hour
	//tipsy:guardedby mu
	cur map[uint64]float64
	// lastKey/lastID memoize the most recent join: batches arrive
	// flow-sorted, so consecutive records usually share the join key.
	//tipsy:guardedby mu
	lastKey joinKey
	//tipsy:guardedby mu
	lastID int32
	//tipsy:guardedby mu
	lastValid bool
}

// counterKey packs an interned feature ID and a link into the hourly
// counter map key.
func counterKey(id int32, link wan.LinkID) uint64 {
	return uint64(uint32(id))<<32 | uint64(uint32(link))
}

// aggregatorMetrics are the aggregator's registry-backed counters:
// raw ingested records, records dropped for missing metadata, and a
// gauge tracking how many hourly aggregates are pending drain.
type aggregatorMetrics struct {
	raw     *obsv.Counter
	dropped *obsv.Counter
	pending *obsv.Gauge
}

func newAggregatorMetrics(reg *obsv.Registry) aggregatorMetrics {
	return aggregatorMetrics{
		raw:     reg.Counter("pipeline_records_raw_total"),
		dropped: reg.Counter("pipeline_records_dropped_total"),
		pending: reg.Gauge("pipeline_aggregates_pending"),
	}
}

// Aggregator consumes IPFIX flow records and produces hourly
// aggregated feature records. It implements netsim.RecordSink and
// netsim.BatchSink. Safe for concurrent use; ingest is sharded by
// source prefix so concurrent callers rarely share a lock.
//
// The Geo-IP database and Metadata func are treated as immutable
// mappings for the aggregator's lifetime — join results are cached.
type Aggregator struct {
	geoip *geo.GeoIP
	meta  Metadata

	shards [aggShards]aggShard
	// keys counts distinct aggregates across all shards — the drain
	// capacity hint and the pending gauge's source of truth.
	keys atomic.Int64
	m    aggregatorMetrics

	truthMu sync.Mutex
	//tipsy:guardedby truthMu
	truth TruthSink

	// tracer + traceCtx attach the aggregator's spans (aggregate_batch,
	// drain, truth_join) to the ingest cycle's trace. Set via SetTrace
	// before ingest begins; the nil tracer / zero context default
	// disables span emission at the cost of one nil check per batch.
	//tipsy:nolock set via SetTrace before ingest begins, constant after
	tracer *obsv.Tracer
	//tipsy:nolock set via SetTrace before ingest begins, constant after
	traceCtx obsv.SpanContext
}

// NewAggregator builds an aggregator joining against the given Geo-IP
// database and destination metadata, with a private metrics registry.
func NewAggregator(geoip *geo.GeoIP, meta Metadata) *Aggregator {
	return NewAggregatorOn(obsv.NewRegistry(), geoip, meta)
}

// NewAggregatorOn builds an aggregator whose counters live in reg
// under the pipeline_ prefix.
func NewAggregatorOn(reg *obsv.Registry, geoip *geo.GeoIP, meta Metadata) *Aggregator {
	a := &Aggregator{
		geoip: geoip, meta: meta,
		m: newAggregatorMetrics(reg),
	}
	for i := range a.shards {
		a.shards[i].join = make(map[joinKey]int32)
		a.shards[i].featIndex = make(map[features.FlowFeatures]int32)
		a.shards[i].hours = make(map[wan.Hour]map[uint64]float64)
	}
	return a
}

// Record ingests one sampled flow record observed during hour h.
// Records whose destination has no metadata are dropped and counted —
// the paper's pipeline likewise only processes flows destined to
// known cloud services.
//
//tipsy:hotpath
func (a *Aggregator) Record(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
	a.m.raw.Inc()
	prefix := bgp.Slash24(rec.SrcAddr)
	s := &a.shards[shardOf(prefix)]
	s.mu.Lock()
	a.applyLocked(s, h, link, prefix, rec)
	s.mu.Unlock()
}

// batchScratch is RecordBatch's pooled per-call work area: record
// indices grouped by destination shard.
type batchScratch struct {
	idx [aggShards][]int32
}

func (s *batchScratch) assign(sh uint32, i int32) {
	s.idx[sh] = append(s.idx[sh], i)
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// RecordBatch ingests a batch of flow records, deriving the hour from
// each record's start timestamp and the link from its ingress
// interface (the collector fills both from the wire). Records are
// grouped by shard first so each shard lock is taken at most once per
// batch — with ~64-record IPFIX messages that amortizes lock traffic
// roughly an order of magnitude versus per-record Record calls.
// Within a shard, records apply in batch order, so per-key float
// accumulation order — and therefore the drained output — is
// bit-identical to feeding the same stream through Record.
//
//tipsy:hotpath
func (a *Aggregator) RecordBatch(recs []ipfix.FlowRecord) {
	if len(recs) == 0 {
		return
	}
	sp := a.tracer.StartFrom(a.traceCtx, "aggregate_batch")
	a.m.raw.Add(uint64(len(recs)))
	sc := scratchPool.Get().(*batchScratch)
	for i := range recs {
		sc.assign(shardOf(bgp.Slash24(recs[i].SrcAddr)), int32(i))
	}
	for si := range sc.idx {
		idx := sc.idx[si]
		if len(idx) == 0 {
			continue
		}
		s := &a.shards[si]
		s.mu.Lock()
		for _, i := range idx {
			rec := &recs[i]
			a.applyLocked(s, wan.Hour(rec.StartSecs/3600), wan.LinkID(rec.Ingress),
				bgp.Slash24(rec.SrcAddr), rec)
		}
		s.mu.Unlock()
		sc.idx[si] = idx[:0]
	}
	scratchPool.Put(sc)
	sp.SetInt("records", int64(len(recs)))
	sp.End()
}

// applyLocked joins and accumulates one record into shard s. The
// caller holds s.mu and has already counted the record as raw.
func (a *Aggregator) applyLocked(s *aggShard, h wan.Hour, link wan.LinkID, prefix uint32, rec *ipfix.FlowRecord) {
	jk := joinKey{prefix: prefix, dst: rec.DstAddr, as: rec.SrcAS}
	var id int32
	if s.lastValid && jk == s.lastKey {
		id = s.lastID
	} else {
		var seen bool
		id, seen = s.join[jk]
		if !seen {
			id = a.joinMiss(s, jk, prefix, rec)
		}
		s.lastKey, s.lastID, s.lastValid = jk, id, true
	}
	if id < 0 {
		a.m.dropped.Inc()
		return
	}
	m := s.cur
	if m == nil || s.curHour != h {
		m = s.hours[h]
		if m == nil {
			m = make(map[uint64]float64)
			s.hours[h] = m
		}
		s.curHour = h
		s.cur = m
	}
	k := counterKey(id, link)
	before := len(m)
	m[k] += float64(rec.Octets)
	if len(m) != before {
		a.m.pending.Set(a.keys.Add(1))
	}
}

// joinMiss performs the metadata and Geo-IP joins for a key not yet
// cached, interns the resulting feature tuple, and records the
// mapping. Returns the feature ID, or -1 when the destination has no
// metadata.
func (a *Aggregator) joinMiss(s *aggShard, jk joinKey, prefix uint32, rec *ipfix.FlowRecord) int32 {
	region, svc, ok := a.meta(rec.DstAddr)
	id := int32(-1)
	if ok {
		f := features.FlowFeatures{
			AS:     bgp.ASN(rec.SrcAS),
			Prefix: prefix,
			Loc:    a.geoip.Lookup(prefix),
			Region: region,
			Type:   svc,
		}
		var have bool
		if id, have = s.featIndex[f]; !have {
			id = int32(len(s.feats))
			s.feats = append(s.feats, f)
			s.featIndex[f] = id
		}
	}
	s.join[jk] = id
	return id
}

// SetTruthSink registers a sink that receives every drained record as
// ground truth. Set it before the drain whose records it should see.
func (a *Aggregator) SetTruthSink(ts TruthSink) {
	a.truthMu.Lock()
	a.truth = ts
	a.truthMu.Unlock()
}

// SetTrace attaches the aggregator's spans to the given trace
// context. Call before ingest begins; a nil tracer or zero context
// disables tracing entirely.
func (a *Aggregator) SetTrace(t *obsv.Tracer, sc obsv.SpanContext) {
	a.tracer = t
	a.traceCtx = sc
}

// Records drains the aggregator, returning the hourly feature records
// in deterministic order (hour, then feature tuple, then link). All
// shard locks are held together — in shard order, so lock acquisition
// is totally ordered — while the counter maps are swapped out, making
// the drain an atomic snapshot; the merged sort then erases any trace
// of the sharding, so output order is byte-identical to a single-map
// aggregator's. When a truth sink is registered, the drained records
// are also streamed to it in the same order.
//
//tipsy:guardedby-skip every shard lock is taken in a loop before any shard is touched; the must-hold dataflow cannot see this quantified all-shards critical section
func (a *Aggregator) Records() []features.Record {
	sp := a.tracer.StartFrom(a.traceCtx, "drain")
	var hours [aggShards]map[wan.Hour]map[uint64]float64
	var feats [aggShards][]features.FlowFeatures
	for i := range a.shards {
		a.shards[i].mu.Lock()
	}
	for i := range a.shards {
		s := &a.shards[i]
		hours[i] = s.hours
		feats[i] = s.feats
		s.hours = make(map[wan.Hour]map[uint64]float64)
		s.cur = nil
		s.curHour = 0
	}
	total := a.keys.Swap(0)
	a.m.pending.Set(0)
	for i := range a.shards {
		a.shards[i].mu.Unlock()
	}
	// Sort hour by hour: the hour is the leading sort key and
	// aggregate keys are unique, so concatenating per-hour sorted
	// segments is byte-identical to one global sort while the n·log n
	// term pays only for the (much smaller) per-hour record counts.
	var hs []wan.Hour
	seenHour := make(map[wan.Hour]bool)
	for i := range hours {
		for h := range hours[i] {
			if !seenHour[h] {
				seenHour[h] = true
				hs = append(hs, h)
			}
		}
	}
	slices.Sort(hs)
	// Fast path: when every feature tuple packs into two uint64 sort
	// keys (region needs 8 bits; locations and types always fit), the
	// per-hour sort compares integers instead of walking struct
	// fields. Key order is exactly cmpRecord's field order, so both
	// paths emit identical output.
	canPack := true
	for i := range feats {
		for j := range feats[i] {
			if feats[i][j].Region > 0xFF {
				canPack = false
			}
		}
	}
	out := make([]features.Record, 0, total)
	var packed []packedRec
	for _, h := range hs {
		if canPack {
			packed = packed[:0]
			for i := range hours {
				ff := feats[i]
				for k, b := range hours[i][h] {
					f := &ff[k>>32]
					packed = append(packed, packedRec{
						k1: uint64(f.AS)<<32 | uint64(f.Prefix),
						k2: uint64(f.Loc)<<48 | uint64(f.Region)<<40 |
							uint64(f.Type)<<32 | uint64(uint32(k)),
						bytes: b,
					})
				}
			}
			slices.SortFunc(packed, func(a, b packedRec) int {
				if a.k1 != b.k1 {
					return cmpU64(a.k1, b.k1)
				}
				return cmpU64(a.k2, b.k2)
			})
			for _, p := range packed {
				out = append(out, features.Record{
					Hour: h,
					Flow: features.FlowFeatures{
						AS:     bgp.ASN(p.k1 >> 32),
						Prefix: uint32(p.k1),
						Loc:    geo.MetroID(p.k2 >> 48),
						Region: wan.Region(p.k2 >> 40 & 0xFF),
						Type:   wan.ServiceType(p.k2 >> 32 & 0xFF),
					},
					Link:  wan.LinkID(uint32(p.k2)),
					Bytes: p.bytes,
				})
			}
			continue
		}
		start := len(out)
		for i := range hours {
			ff := feats[i]
			for k, b := range hours[i][h] {
				out = append(out, features.Record{
					Hour:  h,
					Flow:  ff[k>>32],
					Link:  wan.LinkID(uint32(k)),
					Bytes: b,
				})
			}
		}
		slices.SortFunc(out[start:], cmpRecord)
	}
	a.truthMu.Lock()
	truth := a.truth
	a.truthMu.Unlock()
	if truth != nil {
		tj := a.tracer.StartChild(sp, "truth_join")
		for i := range out {
			truth.ObserveTruth(out[i])
		}
		tj.SetInt("records", int64(len(out)))
		tj.End()
	}
	sp.SetInt("records", int64(len(out)))
	sp.End()
	return out
}

// packedRec is one drained aggregate with its feature tuple and link
// packed into two integer sort keys (see Records).
type packedRec struct {
	k1, k2 uint64
	bytes  float64
}

// cmpRecord is the drain's total order: hour, feature tuple, link.
// Aggregate keys are unique, so the order admits no ties and the
// sorted output is fully deterministic.
func cmpRecord(a, b features.Record) int {
	switch {
	case a.Hour != b.Hour:
		return cmpU64(uint64(a.Hour), uint64(b.Hour))
	case a.Flow.AS != b.Flow.AS:
		return cmpU64(uint64(a.Flow.AS), uint64(b.Flow.AS))
	case a.Flow.Prefix != b.Flow.Prefix:
		return cmpU64(uint64(a.Flow.Prefix), uint64(b.Flow.Prefix))
	case a.Flow.Loc != b.Flow.Loc:
		return cmpU64(uint64(a.Flow.Loc), uint64(b.Flow.Loc))
	case a.Flow.Region != b.Flow.Region:
		return cmpU64(uint64(a.Flow.Region), uint64(b.Flow.Region))
	case a.Flow.Type != b.Flow.Type:
		return cmpU64(uint64(a.Flow.Type), uint64(b.Flow.Type))
	default:
		return cmpU64(uint64(a.Link), uint64(b.Link))
	}
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Stats reports how many raw records were ingested, how many were
// dropped for missing metadata, and how many aggregates are pending.
func (a *Aggregator) Stats() (raw, dropped, pending int) {
	return int(a.m.raw.Value()), int(a.m.dropped.Value()), int(a.keys.Load())
}

// Encoded compresses feature records with ordinal dictionaries — the
// §4.2 compression step. It exists to quantify the size reduction
// (EncodedSize) and to exercise the dictionary path end to end.
type Encoded struct {
	AS, Prefix, Loc, Region, Type features.Dict
	Rows                          []EncodedRow
}

// EncodedRow is one dictionary-encoded aggregate.
type EncodedRow struct {
	Hour                          wan.Hour
	AS, Prefix, Loc, Region, Type uint32
	Link                          wan.LinkID
	Bytes                         float64
}

// Encode dictionary-encodes the records.
func Encode(recs []features.Record) *Encoded {
	e := &Encoded{Rows: make([]EncodedRow, len(recs))}
	for i, r := range recs {
		e.Rows[i] = EncodedRow{
			Hour:   r.Hour,
			AS:     e.AS.Code(uint64(r.Flow.AS)),
			Prefix: e.Prefix.Code(uint64(r.Flow.Prefix)),
			Loc:    e.Loc.Code(uint64(r.Flow.Loc)),
			Region: e.Region.Code(uint64(r.Flow.Region)),
			Type:   e.Type.Code(uint64(r.Flow.Type)),
			Link:   r.Link,
			Bytes:  r.Bytes,
		}
	}
	return e
}

// Decode reverses Encode.
func (e *Encoded) Decode() []features.Record {
	out := make([]features.Record, len(e.Rows))
	for i, row := range e.Rows {
		as, _ := e.AS.Value(row.AS)
		prefix, _ := e.Prefix.Value(row.Prefix)
		loc, _ := e.Loc.Value(row.Loc)
		region, _ := e.Region.Value(row.Region)
		typ, _ := e.Type.Value(row.Type)
		out[i] = features.Record{
			Hour: row.Hour,
			Flow: features.FlowFeatures{
				AS:     bgp.ASN(as),
				Prefix: uint32(prefix),
				Loc:    geo.MetroID(loc),
				Region: wan.Region(region),
				Type:   wan.ServiceType(typ),
			},
			Link:  row.Link,
			Bytes: row.Bytes,
		}
	}
	return out
}
