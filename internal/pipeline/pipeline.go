// Package pipeline implements TIPSY's data aggregation stage (§4.2 of
// the paper): IPFIX flow records are joined with network metadata
// (destination region and service type) and Geo-IP (source location),
// aggregated into hour-long chunks indexed by exactly the features
// TIPSY uses, and ordinally encoded. Aggregation merely sums bytes
// per (hour, feature tuple, link), so it loses nothing the models
// need while shrinking the data by orders of magnitude.
package pipeline

import (
	"sort"
	"sync"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/obsv"
	"tipsy/internal/wan"
)

// Metadata resolves a destination address inside the WAN to its
// region and service type.
type Metadata func(dstAddr uint32) (wan.Region, wan.ServiceType, bool)

// TruthSink receives the ground-truth feature records the aggregator
// drains — the (hour, flow, link, bytes) tuples that say where each
// flow aggregate actually ingressed. The online quality monitor
// implements this to join served predictions against reality; the
// aggregator always knew the actual ingress link of every flow, it
// just never fed it back until now. Records arrive in the same
// deterministic order Records returns them.
type TruthSink interface {
	ObserveTruth(rec features.Record)
}

// aggKey indexes one hourly aggregate.
type aggKey struct {
	hour wan.Hour
	flow features.FlowFeatures
	link wan.LinkID
}

// aggregatorMetrics are the aggregator's registry-backed counters:
// raw ingested records, records dropped for missing metadata, and a
// gauge tracking how many hourly aggregates are pending drain.
type aggregatorMetrics struct {
	raw     *obsv.Counter
	dropped *obsv.Counter
	pending *obsv.Gauge
}

func newAggregatorMetrics(reg *obsv.Registry) aggregatorMetrics {
	return aggregatorMetrics{
		raw:     reg.Counter("pipeline_records_raw_total"),
		dropped: reg.Counter("pipeline_records_dropped_total"),
		pending: reg.Gauge("pipeline_aggregates_pending"),
	}
}

// Aggregator consumes IPFIX flow records and produces hourly
// aggregated feature records. It implements netsim.RecordSink. Safe
// for concurrent use.
type Aggregator struct {
	geoip *geo.GeoIP
	meta  Metadata

	mu    sync.Mutex
	acc   map[aggKey]float64
	m     aggregatorMetrics
	truth TruthSink
}

// NewAggregator builds an aggregator joining against the given Geo-IP
// database and destination metadata, with a private metrics registry.
func NewAggregator(geoip *geo.GeoIP, meta Metadata) *Aggregator {
	return NewAggregatorOn(obsv.NewRegistry(), geoip, meta)
}

// NewAggregatorOn builds an aggregator whose counters live in reg
// under the pipeline_ prefix.
func NewAggregatorOn(reg *obsv.Registry, geoip *geo.GeoIP, meta Metadata) *Aggregator {
	return &Aggregator{
		geoip: geoip, meta: meta,
		acc: make(map[aggKey]float64),
		m:   newAggregatorMetrics(reg),
	}
}

// Record ingests one sampled flow record observed during hour h.
// Records whose destination has no metadata are dropped and counted —
// the paper's pipeline likewise only processes flows destined to
// known cloud services.
//
//tipsy:hotpath
func (a *Aggregator) Record(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
	region, svc, ok := a.meta(rec.DstAddr)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m.raw.Inc()
	if !ok {
		a.m.dropped.Inc()
		return
	}
	prefix := bgp.Slash24(rec.SrcAddr)
	key := aggKey{
		hour: h,
		flow: features.FlowFeatures{
			AS:     bgp.ASN(rec.SrcAS),
			Prefix: prefix,
			Loc:    a.geoip.Lookup(prefix),
			Region: region,
			Type:   svc,
		},
		link: link,
	}
	a.acc[key] += float64(rec.Octets)
	a.m.pending.Set(int64(len(a.acc)))
}

// SetTruthSink registers a sink that receives every drained record as
// ground truth. Set it before the drain whose records it should see.
func (a *Aggregator) SetTruthSink(ts TruthSink) {
	a.mu.Lock()
	a.truth = ts
	a.mu.Unlock()
}

// Records drains the aggregator, returning the hourly feature records
// in deterministic order (hour, then feature tuple, then link). When
// a truth sink is registered, the drained records are also streamed
// to it in the same order.
func (a *Aggregator) Records() []features.Record {
	a.mu.Lock()
	out := make([]features.Record, 0, len(a.acc))
	for k, b := range a.acc {
		out = append(out, features.Record{Hour: k.hour, Flow: k.flow, Link: k.link, Bytes: b})
	}
	a.acc = make(map[aggKey]float64)
	a.m.pending.Set(0)
	truth := a.truth
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return lessRecord(&out[i], &out[j]) })
	if truth != nil {
		for i := range out {
			truth.ObserveTruth(out[i])
		}
	}
	return out
}

func lessRecord(a, b *features.Record) bool {
	if a.Hour != b.Hour {
		return a.Hour < b.Hour
	}
	if a.Flow.AS != b.Flow.AS {
		return a.Flow.AS < b.Flow.AS
	}
	if a.Flow.Prefix != b.Flow.Prefix {
		return a.Flow.Prefix < b.Flow.Prefix
	}
	if a.Flow.Loc != b.Flow.Loc {
		return a.Flow.Loc < b.Flow.Loc
	}
	if a.Flow.Region != b.Flow.Region {
		return a.Flow.Region < b.Flow.Region
	}
	if a.Flow.Type != b.Flow.Type {
		return a.Flow.Type < b.Flow.Type
	}
	return a.Link < b.Link
}

// Stats reports how many raw records were ingested, how many were
// dropped for missing metadata, and how many aggregates are pending.
func (a *Aggregator) Stats() (raw, dropped, pending int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.m.raw.Value()), int(a.m.dropped.Value()), len(a.acc)
}

// Encoded compresses feature records with ordinal dictionaries — the
// §4.2 compression step. It exists to quantify the size reduction
// (EncodedSize) and to exercise the dictionary path end to end.
type Encoded struct {
	AS, Prefix, Loc, Region, Type features.Dict
	Rows                          []EncodedRow
}

// EncodedRow is one dictionary-encoded aggregate.
type EncodedRow struct {
	Hour                          wan.Hour
	AS, Prefix, Loc, Region, Type uint32
	Link                          wan.LinkID
	Bytes                         float64
}

// Encode dictionary-encodes the records.
func Encode(recs []features.Record) *Encoded {
	e := &Encoded{Rows: make([]EncodedRow, len(recs))}
	for i, r := range recs {
		e.Rows[i] = EncodedRow{
			Hour:   r.Hour,
			AS:     e.AS.Code(uint64(r.Flow.AS)),
			Prefix: e.Prefix.Code(uint64(r.Flow.Prefix)),
			Loc:    e.Loc.Code(uint64(r.Flow.Loc)),
			Region: e.Region.Code(uint64(r.Flow.Region)),
			Type:   e.Type.Code(uint64(r.Flow.Type)),
			Link:   r.Link,
			Bytes:  r.Bytes,
		}
	}
	return e
}

// Decode reverses Encode.
func (e *Encoded) Decode() []features.Record {
	out := make([]features.Record, len(e.Rows))
	for i, row := range e.Rows {
		as, _ := e.AS.Value(row.AS)
		prefix, _ := e.Prefix.Value(row.Prefix)
		loc, _ := e.Loc.Value(row.Loc)
		region, _ := e.Region.Value(row.Region)
		typ, _ := e.Type.Value(row.Type)
		out[i] = features.Record{
			Hour: row.Hour,
			Flow: features.FlowFeatures{
				AS:     bgp.ASN(as),
				Prefix: uint32(prefix),
				Loc:    geo.MetroID(loc),
				Region: wan.Region(region),
				Type:   wan.ServiceType(typ),
			},
			Link:  row.Link,
			Bytes: row.Bytes,
		}
	}
	return out
}
