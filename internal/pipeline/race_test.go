package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/wan"
)

// raceAggregator builds an aggregator whose geoip knows the /24s the
// synthetic workload below uses.
func raceAggregator() *Aggregator {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	for i := uint32(0); i < 16; i++ {
		g.Register(0x0b000000+i<<8, geo.MetroID(1+i%5))
	}
	return NewAggregator(g, staticMeta(2, 1))
}

// raceRecord derives the i-th record of a deterministic workload that
// exercises many distinct (hour, link, flow) aggregation keys.
func raceRecord(i int) (wan.Hour, wan.LinkID, ipfix.FlowRecord) {
	return wan.Hour(i % 6), wan.LinkID(1 + i%9), ipfix.FlowRecord{
		SrcAddr: 0x0b000000 + uint32(i%16)<<8 + 5,
		DstAddr: 40<<24 + uint32(i%11),
		Octets:  uint64(1 + i%97),
		SrcAS:   uint32(100 + i%13),
	}
}

// TestAggregatorConcurrentRecordMatchesSerial hammers Record from many
// goroutines — the shape of a collector fed by parallel exporters —
// and requires the drained aggregates to be identical to a serial run
// over the same workload. Run under -race this also proves Record's
// locking is sound.
func TestAggregatorConcurrentRecordMatchesSerial(t *testing.T) {
	const n, workers = 6000, 8

	serial := raceAggregator()
	for i := 0; i < n; i++ {
		h, l, r := raceRecord(i)
		serial.Record(h, l, &r)
	}

	conc := raceAggregator()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				h, l, r := raceRecord(i)
				conc.Record(h, l, &r)
			}
		}(w)
	}
	wg.Wait()

	sr, sd, sp := serial.Stats()
	cr, cd, cp := conc.Stats()
	if sr != cr || sd != cd || sp != cp {
		t.Errorf("stats diverge: serial (%d,%d,%d) concurrent (%d,%d,%d)",
			sr, sd, sp, cr, cd, cp)
	}
	a, b := serial.Records(), conc.Records()
	if len(a) == 0 {
		t.Fatal("workload produced no aggregates")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("concurrent aggregation diverged from serial: %d vs %d aggregates", len(a), len(b))
	}
}
