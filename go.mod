module tipsy

go 1.22
