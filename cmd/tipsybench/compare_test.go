package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema: SchemaVersion, Date: "2026-08-06", Seed: 1, Config: "quick",
		GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		Stages: []StageResult{
			{Name: "generate", Items: 1000, WallNs: 80e6},
			{Name: "ingest", Items: 50000, WallNs: 200e6},
		},
		TotalWallNs: 280e6,
		Env:         EnvSummary{Flows: 1000, Links: 40, TrainRecords: 9000},
		Metrics:     map[string]int64{"pipeline_records_raw_total": 50000},
		Accuracy:    map[string]float64{"k1": 0.77, "k3": 0.89},
	}
}

func TestCompareIdentical(t *testing.T) {
	res := Compare(sampleReport(), sampleReport(), 0.25)
	if len(res.Mismatches) != 0 || len(res.Warnings) != 0 {
		t.Errorf("identical reports diff: %+v", res)
	}
}

func TestCompareDeterministicMismatches(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string // substring of the mismatch
	}{
		{"stage items", func(r *Report) { r.Stages[1].Items = 49999 }, "stage ingest items"},
		{"env", func(r *Report) { r.Env.TrainRecords = 1 }, "env:"},
		{"accuracy value", func(r *Report) { r.Accuracy["k3"] = 0.5 }, "accuracy[k3]"},
		{"metric missing", func(r *Report) { delete(r.Metrics, "pipeline_records_raw_total") }, "absent in current"},
		{"metric extra", func(r *Report) { r.Metrics["pipeline_flows_total"] = 7 }, "absent in prior"},
		{"stage renamed", func(r *Report) { r.Stages[0].Name = "gen" }, "stage 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := sampleReport()
			tc.mutate(cur)
			res := Compare(sampleReport(), cur, 0.25)
			if len(res.Mismatches) == 0 {
				t.Fatal("no mismatch reported")
			}
			found := false
			for _, m := range res.Mismatches {
				if strings.Contains(m, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no mismatch containing %q: %v", tc.want, res.Mismatches)
			}
		})
	}
}

func TestCompareIdentityShortCircuits(t *testing.T) {
	cur := sampleReport()
	cur.Seed = 2
	cur.Stages[0].Items = 123 // must not be reached
	res := Compare(sampleReport(), cur, 0.25)
	if len(res.Mismatches) != 1 || !strings.Contains(res.Mismatches[0], "seed") {
		t.Errorf("identity mismatch should short-circuit: %v", res.Mismatches)
	}
}

func TestCompareTimingWarnings(t *testing.T) {
	cur := sampleReport()
	cur.Stages[1].WallNs = 300e6 // +50% on a 200ms stage
	cur.TotalWallNs = 380e6      // +35.7%
	res := Compare(sampleReport(), cur, 0.25)
	if len(res.Mismatches) != 0 {
		t.Fatalf("timing drift must not be a mismatch: %v", res.Mismatches)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("warnings = %v, want stage ingest + total", res.Warnings)
	}
	if !strings.Contains(res.Warnings[0], "stage ingest wall time +50.0%") {
		t.Errorf("warning text: %q", res.Warnings[0])
	}

	// Within tolerance: silent.
	cur = sampleReport()
	cur.Stages[1].WallNs = 220e6
	cur.TotalWallNs = 300e6
	if res := Compare(sampleReport(), cur, 0.25); len(res.Warnings) != 0 {
		t.Errorf("drift within tolerance warned: %v", res.Warnings)
	}

	// Sub-floor stages never warn, however large the relative delta.
	cur = sampleReport()
	cur.Stages[0].WallNs = 1e6
	prior := sampleReport()
	prior.Stages[0].WallNs = 1e3
	prior.TotalWallNs = cur.TotalWallNs
	if res := Compare(prior, cur, 0.25); len(res.Warnings) != 0 {
		t.Errorf("sub-floor stage warned: %v", res.Warnings)
	}
}

func TestComparePerRecordAllocWarnings(t *testing.T) {
	base := sampleReport()
	base.Stages[1].AllocsPerRecord = 10
	base.Stages[1].BytesPerRecord = 4000

	// >10% regression on either per-record metric warns but never
	// fails the run.
	cur := sampleReport()
	cur.Stages[1].AllocsPerRecord = 12  // +20%
	cur.Stages[1].BytesPerRecord = 4200 // +5%: within tolerance
	res := Compare(base, cur, 0.25)
	if len(res.Mismatches) != 0 {
		t.Fatalf("alloc regression must not be a mismatch: %v", res.Mismatches)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "allocs_per_record +20.0%") {
		t.Fatalf("warnings = %v, want one allocs_per_record warning", res.Warnings)
	}

	// Improvements are silent — the tipsylint budget ratchet, not the
	// bench comparison, is where wins are locked in.
	cur = sampleReport()
	cur.Stages[1].AllocsPerRecord = 5
	cur.Stages[1].BytesPerRecord = 2000
	if res := Compare(base, cur, 0.25); len(res.Warnings) != 0 {
		t.Errorf("improvement warned: %v", res.Warnings)
	}

	// A prior report predating the fields (zero values) never warns.
	cur = sampleReport()
	cur.Stages[1].AllocsPerRecord = 99
	cur.Stages[1].BytesPerRecord = 99999
	if res := Compare(sampleReport(), cur, 0.25); len(res.Warnings) != 0 {
		t.Errorf("zero-valued prior warned: %v", res.Warnings)
	}
}

func TestCompareToolchainWarnings(t *testing.T) {
	cur := sampleReport()
	cur.GoVersion = "go1.25"
	cur.GOARCH = "arm64"
	res := Compare(sampleReport(), cur, 0.25)
	if len(res.Mismatches) != 0 {
		t.Fatalf("toolchain change must not fail: %v", res.Mismatches)
	}
	if len(res.Warnings) != 2 {
		t.Errorf("warnings = %v, want go_version + platform", res.Warnings)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_prior.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if res := Compare(rep, got, 0.25); len(res.Mismatches) != 0 || len(res.Warnings) != 0 {
		t.Errorf("round-tripped report diffs: %+v", res)
	}

	if _, err := loadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loadReport on a missing file did not error")
	}
}
