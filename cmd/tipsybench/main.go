// Command tipsybench is TIPSY's performance-trajectory harness: it
// runs the full prediction cycle end-to-end over a seeded simulated
// WAN — build environment → ingest telemetry → encode → train →
// predict — and records wall time, allocation, and throughput per
// stage alongside the deterministic outputs (record counts, registry
// counters, accuracy). Reports are written as BENCH_<date>.json so a
// series of commits leaves a perf trajectory in the repo history.
//
// Schema ("tipsybench/v1"): the top-level Report object splits into
//   - identity fields: schema, date, seed, config, go_version, goos,
//     goarch;
//   - deterministic fields: per-stage items, env summary (flows,
//     links, record counts, encoded rows, dictionary sizes), the
//     pipeline registry counters, and byte-weighted accuracy at k=1
//     and k=3. Two runs with the same seed and config produce
//     identical deterministic fields — `go test ./cmd/tipsybench`
//     enforces this;
//   - timing fields: per-stage wall_ns, alloc_bytes, mallocs,
//     items_per_sec, and total_wall_ns. Only these (and date) may
//     differ between same-seed runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/obsv"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// SchemaVersion identifies the report layout. Bump when fields change
// meaning; additions are backwards compatible.
const SchemaVersion = "tipsybench/v1"

// StageResult is one pipeline stage's measurements. Items is
// deterministic for a fixed seed; the rest are timing fields.
type StageResult struct {
	Name  string `json:"name"`
	Items int64  `json:"items"` // units processed (deterministic)

	WallNs      int64   `json:"wall_ns"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Mallocs     uint64  `json:"mallocs"`
	ItemsPerSec float64 `json:"items_per_sec"`
	// Per-record allocation cost — the hot-path ratchet's dynamic
	// counterpart. Timing-class: runtime internals (GC timing, map
	// growth points) make them slightly run-dependent, so they are
	// stripped by StripTiming and only warned about by -compare.
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

// EnvSummary captures the deterministic shape of the simulated
// environment the cycle ran over.
type EnvSummary struct {
	Flows        int `json:"flows"`
	Links        int `json:"links"`
	TrainRecords int `json:"train_records"`
	TestRecords  int `json:"test_records"`
	EncodedRows  int `json:"encoded_rows"`
	DictAS       int `json:"dict_as"`
	DictPrefix   int `json:"dict_prefix"`
	DictLoc      int `json:"dict_loc"`
}

// Report is one tipsybench run.
type Report struct {
	Schema    string `json:"schema"`
	Date      string `json:"date"` // YYYY-MM-DD, not compared
	Seed      int64  `json:"seed"`
	Config    string `json:"config"` // quick | small | full
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	Stages      []StageResult      `json:"stages"`
	TotalWallNs int64              `json:"total_wall_ns"`
	Env         EnvSummary         `json:"env"`
	Metrics     map[string]int64   `json:"metrics"`  // pipeline registry scalars
	Accuracy    map[string]float64 `json:"accuracy"` // "k1", "k3"

	// Tracing overhead, ns per span lifecycle (start, one attribute,
	// end): sampled measures a recording tracer, disabled a nil one —
	// the cost instrumented hot paths pay when tracing is off. Both
	// are timing fields.
	TracingSampledNs  int64 `json:"tracing_sampled_ns"`
	TracingDisabledNs int64 `json:"tracing_disabled_ns"`
}

// StripTiming zeroes every field that may legitimately differ between
// two same-seed runs, leaving only the deterministic payload. Used by
// the determinism test and by humans diffing two BENCH files.
func (r *Report) StripTiming() {
	r.Date = ""
	r.TotalWallNs = 0
	r.TracingSampledNs = 0
	r.TracingDisabledNs = 0
	for i := range r.Stages {
		r.Stages[i].WallNs = 0
		r.Stages[i].AllocBytes = 0
		r.Stages[i].Mallocs = 0
		r.Stages[i].ItemsPerSec = 0
		r.Stages[i].AllocsPerRecord = 0
		r.Stages[i].BytesPerRecord = 0
	}
}

// stage runs fn, measuring wall time and allocation around it, and
// appends the result to the report. items is evaluated after fn so
// stages can count their own output.
func (r *Report) stage(name string, fn func() int64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	items := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	res := StageResult{
		Name:       name,
		Items:      items,
		WallNs:     wall.Nanoseconds(),
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:    after.Mallocs - before.Mallocs,
	}
	if wall > 0 {
		res.ItemsPerSec = float64(items) / wall.Seconds()
	}
	if items > 0 {
		res.AllocsPerRecord = float64(res.Mallocs) / float64(items)
		res.BytesPerRecord = float64(res.AllocBytes) / float64(items)
	}
	r.Stages = append(r.Stages, res)
	r.TotalWallNs += res.WallNs
}

// quickConfig scales SmallEnvConfig down further for CI gating: the
// same code paths, a fraction of the horizon.
func quickConfig(seed int64) eval.EnvConfig {
	cfg := eval.SmallEnvConfig(seed)
	cfg.TrainDays, cfg.TestDays = 4, 2
	cfg.TrafficCfg.NFlows = 1000
	cfg.SimCfg.HorizonHours = wan.Hour((cfg.TrainDays + cfg.TestDays) * 24)
	return cfg
}

// run executes the benchmark cycle under cfg and returns the report.
// Everything except the timing fields is a pure function of cfg.
func run(cfg eval.EnvConfig, config string) *Report {
	rep := &Report{
		Schema:    SchemaVersion,
		Seed:      cfg.Seed,
		Config:    config,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	// Stage 1: generate — topology, workload, simulator.
	var (
		metros *geo.DB
		g      *topology.Graph
		w      *traffic.Workload
		sim    *netsim.Sim
	)
	rep.stage("generate", func() int64 {
		metros = geo.World()
		g = topology.Generate(cfg.TopoCfg, metros)
		w = traffic.Generate(cfg.TrafficCfg, g, metros)
		sim = netsim.New(cfg.SimCfg, g, metros, w)
		return int64(len(w.Flows))
	})
	rep.Env.Flows = len(w.Flows)
	rep.Env.Links = len(sim.Links())

	// Stage 2: ingest — simulate the horizon through the aggregation
	// pipeline; throughput is raw IPFIX records, read back from the
	// pipeline's own registry counter.
	reg := obsv.NewRegistry()
	var all []features.Record
	rep.stage("ingest", func() int64 {
		agg := pipeline.NewAggregatorOn(reg, sim.GeoIP(), sim.DstMetadata)
		sim.Run(netsim.RunOptions{From: 0, To: cfg.SimCfg.HorizonHours, Sink: agg})
		all = agg.Records()
		return int64(reg.Counter("pipeline_records_raw_total").Value())
	})
	trainTo := wan.Hour(cfg.TrainDays * 24)
	train := dataset.Window(all, 0, trainTo)
	test := dataset.Window(all, trainTo, cfg.SimCfg.HorizonHours)
	rep.Env.TrainRecords = len(train)
	rep.Env.TestRecords = len(test)

	// Stage 3: encode — the §4.2 ordinal-dictionary compression.
	var enc *pipeline.Encoded
	rep.stage("encode", func() int64 {
		enc = pipeline.Encode(train)
		return int64(len(enc.Rows))
	})
	rep.Env.EncodedRows = len(enc.Rows)
	rep.Env.DictAS = enc.AS.Len()
	rep.Env.DictPrefix = enc.Prefix.Len()
	rep.Env.DictLoc = enc.Loc.Len()

	// Stage 4: train — the serving ensemble Hist_AP → Hist_AL →
	// Hist_A over the training window.
	var model core.Predictor
	rep.stage("train", func() int64 {
		hA := core.TrainHistorical(features.SetA, train, core.DefaultHistOpts())
		hAP := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
		hAL := core.TrainHistorical(features.SetAL, train, core.DefaultHistOpts())
		model = core.NewEnsemble(hAP, hAL, hA)
		return int64(len(train))
	})

	// Stage 5: predict — byte-weighted top-k accuracy over the test
	// window, one prediction per test flow aggregate.
	rep.stage("predict", func() int64 {
		acc := eval.Accuracy(model, test, eval.Options{Ks: []int{1, 3}})
		rep.Accuracy = map[string]float64{
			"k1": acc[1],
			"k3": acc[3],
		}
		return int64(len(test))
	})

	rep.Metrics = reg.Snapshot().Scalars()
	rep.TracingSampledNs, rep.TracingDisabledNs = measureTracingOverhead()
	return rep
}

// measureTracingOverhead times one span lifecycle — start, one int
// attribute, end — against a recording tracer and against a nil
// (disabled) one. The disabled number is the tax every instrumented
// hot path pays when tracing is off; it should be a handful of
// nanoseconds of nil checks.
func measureTracingOverhead() (sampledNs, disabledNs int64) {
	const iters = 200_000
	tr := obsv.NewTracer(obsv.NewRecorder(1024), obsv.TracerOptions{})
	start := time.Now()
	for i := 0; i < iters; i++ {
		sp := tr.StartRoot("bench")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	sampledNs = time.Since(start).Nanoseconds() / iters
	var off *obsv.Tracer
	start = time.Now()
	for i := 0; i < iters; i++ {
		sp := off.StartRoot("bench")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	disabledNs = time.Since(start).Nanoseconds() / iters
	return sampledNs, disabledNs
}

func main() {
	var (
		seed      = flag.Int64("seed", 1, "environment seed")
		quick     = flag.Bool("quick", false, "scaled-down cycle for CI gating")
		full      = flag.Bool("full", false, "paper-scale environment (slow)")
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
		compare   = flag.String("compare", "", "prior BENCH_*.json to diff against: deterministic mismatch fails, timing drift warns")
		ingestFlr = flag.Float64("ingest-floor", 0, "with -compare: fail if the ingest stage's items_per_sec drops below this fraction of the prior report's (e.g. 0.9)")
		timingTol = flag.Float64("timing-tol", 0.25, "relative wall-time drift tolerated by -compare before warning")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the cycle to this file")
		memprof   = flag.String("memprofile", "", "write an allocation profile of the cycle to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tipsybench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tipsybench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tipsybench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.Lookup("allocs").WriteTo(f, 0)
		}()
	}

	var cfg eval.EnvConfig
	var config string
	switch {
	case *quick:
		cfg, config = quickConfig(*seed), "quick"
	case *full:
		cfg, config = eval.DefaultEnvConfig(*seed), "full"
	default:
		cfg, config = eval.SmallEnvConfig(*seed), "small"
	}

	rep := run(cfg, config)
	rep.Date = time.Now().UTC().Format("2006-01-02")

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tipsybench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tipsybench:", err)
		os.Exit(1)
	}
	for _, s := range rep.Stages {
		fmt.Fprintf(os.Stdout, "%-9s %10d items  %12.2fms  %10.0f items/s  %8.1f MB alloc  %8.2f allocs/rec\n",
			s.Name, s.Items, float64(s.WallNs)/1e6, s.ItemsPerSec, float64(s.AllocBytes)/1e6, s.AllocsPerRecord)
	}
	fmt.Fprintf(os.Stdout, "total     %39.2fms  -> %s\n", float64(rep.TotalWallNs)/1e6, path)
	fmt.Fprintf(os.Stdout, "tracing   %d ns/span sampled, %d ns/span disabled\n",
		rep.TracingSampledNs, rep.TracingDisabledNs)

	if *compare != "" {
		prior, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tipsybench:", err)
			os.Exit(1)
		}
		res := Compare(prior, rep, *timingTol)
		for _, w := range res.Warnings {
			fmt.Fprintf(os.Stdout, "compare: warning: %s\n", w)
		}
		for _, m := range res.Mismatches {
			fmt.Fprintf(os.Stderr, "compare: MISMATCH: %s\n", m)
		}
		if len(res.Mismatches) > 0 {
			fmt.Fprintf(os.Stderr, "tipsybench: %d deterministic mismatch(es) vs %s\n",
				len(res.Mismatches), *compare)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "compare: deterministic fields match %s (%d timing warning(s))\n",
			*compare, len(res.Warnings))
		if *ingestFlr > 0 {
			if err := checkIngestFloor(prior, rep, *ingestFlr); err != nil {
				fmt.Fprintln(os.Stderr, "tipsybench:", err)
				os.Exit(1)
			}
		}
	} else if *ingestFlr > 0 {
		fmt.Fprintln(os.Stderr, "tipsybench: -ingest-floor requires -compare")
		os.Exit(1)
	}
}
