package main

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSameSeedRunsIdentical is the schema's determinism contract: two
// runs with the same seed and config agree on every non-timing field.
func TestSameSeedRunsIdentical(t *testing.T) {
	a := run(quickConfig(7), "quick")
	b := run(quickConfig(7), "quick")
	a.StripTiming()
	b.StripTiming()
	if !reflect.DeepEqual(a, b) {
		aj, _ := json.MarshalIndent(a, "", " ")
		bj, _ := json.MarshalIndent(b, "", " ")
		t.Fatalf("same-seed reports differ on non-timing fields:\n%s\n---\n%s", aj, bj)
	}
}

// TestReportShape sanity-checks the report against the documented
// schema: all five stages present in order, deterministic payload
// populated, accuracy within bounds.
func TestReportShape(t *testing.T) {
	rep := run(quickConfig(3), "quick")
	if rep.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", rep.Schema, SchemaVersion)
	}
	wantStages := []string{"generate", "ingest", "encode", "train", "predict"}
	if len(rep.Stages) != len(wantStages) {
		t.Fatalf("got %d stages, want %d", len(rep.Stages), len(wantStages))
	}
	for i, s := range rep.Stages {
		if s.Name != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
		if s.Items <= 0 {
			t.Errorf("stage %q processed %d items", s.Name, s.Items)
		}
	}
	if rep.Env.TrainRecords <= 0 || rep.Env.TestRecords <= 0 {
		t.Errorf("env summary: %+v", rep.Env)
	}
	if rep.Env.EncodedRows != rep.Env.TrainRecords {
		t.Errorf("encode dropped rows: %d encoded, %d train", rep.Env.EncodedRows, rep.Env.TrainRecords)
	}
	for _, k := range []string{"k1", "k3"} {
		v, ok := rep.Accuracy[k]
		if !ok || v <= 0 || v > 1 {
			t.Errorf("accuracy[%s] = %v, ok=%v", k, v, ok)
		}
	}
	if rep.Accuracy["k3"] < rep.Accuracy["k1"] {
		t.Errorf("accuracy not monotone in k: %v", rep.Accuracy)
	}
	// The ingest stage's registry scalars made it into the report.
	if rep.Metrics["pipeline_records_raw_total"] <= 0 {
		t.Errorf("registry scalars missing from report: %v", rep.Metrics)
	}
	if rep.Metrics["pipeline_aggregates_pending"] != 0 {
		t.Errorf("pending gauge = %d after drain", rep.Metrics["pipeline_aggregates_pending"])
	}
}
