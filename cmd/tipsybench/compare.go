package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// CompareResult classifies the differences between two reports.
// Mismatches are deterministic divergences — same seed and config
// must reproduce them bit-for-bit, so any difference is a correctness
// regression and fails the run. Warnings are timing drifts beyond the
// tolerance (or environment changes that make timing comparison
// unreliable); they inform, they don't gate.
type CompareResult struct {
	Mismatches []string
	Warnings   []string
}

func (c *CompareResult) mismatch(format string, args ...any) {
	c.Mismatches = append(c.Mismatches, fmt.Sprintf(format, args...))
}

func (c *CompareResult) warn(format string, args ...any) {
	c.Warnings = append(c.Warnings, fmt.Sprintf(format, args...))
}

// Compare diffs cur against a prior report. timingTol is the relative
// wall-time drift (e.g. 0.25 = ±25%) tolerated before a stage earns a
// warning; stages faster than timingFloorNs are skipped — their
// timings are noise.
const timingFloorNs = 5e6 // 5ms

func Compare(prior, cur *Report, timingTol float64) CompareResult {
	var res CompareResult

	// Identity: comparing across schema, seed, or config is
	// meaningless — refuse rather than report nonsense diffs.
	if prior.Schema != cur.Schema {
		res.mismatch("schema: prior %q, current %q", prior.Schema, cur.Schema)
	}
	if prior.Seed != cur.Seed {
		res.mismatch("seed: prior %d, current %d", prior.Seed, cur.Seed)
	}
	if prior.Config != cur.Config {
		res.mismatch("config: prior %q, current %q", prior.Config, cur.Config)
	}
	if len(res.Mismatches) > 0 {
		return res
	}

	// Toolchain or platform changes don't invalidate the deterministic
	// fields, but they do reframe any timing delta.
	if prior.GoVersion != cur.GoVersion {
		res.warn("go_version changed: %s -> %s (timing deltas unreliable)", prior.GoVersion, cur.GoVersion)
	}
	if prior.GOOS != cur.GOOS || prior.GOARCH != cur.GOARCH {
		res.warn("platform changed: %s/%s -> %s/%s (timing deltas unreliable)",
			prior.GOOS, prior.GOARCH, cur.GOOS, cur.GOARCH)
	}

	if prior.Env != cur.Env {
		res.mismatch("env: prior %+v, current %+v", prior.Env, cur.Env)
	}
	compareScalarMap(&res, "metrics", prior.Metrics, cur.Metrics)
	compareFloatMap(&res, "accuracy", prior.Accuracy, cur.Accuracy)

	// Stages: the set, order, and item counts are deterministic; wall
	// time gets the tolerance band.
	if len(prior.Stages) != len(cur.Stages) {
		res.mismatch("stage count: prior %d, current %d", len(prior.Stages), len(cur.Stages))
		return res
	}
	for i, p := range prior.Stages {
		c := cur.Stages[i]
		if p.Name != c.Name {
			res.mismatch("stage %d: prior %q, current %q", i, p.Name, c.Name)
			continue
		}
		if p.Items != c.Items {
			res.mismatch("stage %s items: prior %d, current %d", p.Name, p.Items, c.Items)
		}
		warnTiming(&res, "stage "+p.Name, p.WallNs, c.WallNs, timingTol)
		warnPerRecord(&res, "stage "+p.Name+" allocs_per_record", p.AllocsPerRecord, c.AllocsPerRecord)
		warnPerRecord(&res, "stage "+p.Name+" bytes_per_record", p.BytesPerRecord, c.BytesPerRecord)
	}
	warnTiming(&res, "total", prior.TotalWallNs, cur.TotalWallNs, timingTol)
	warnTracing(&res, "tracing sampled span overhead", prior.TracingSampledNs, cur.TracingSampledNs)
	warnTracing(&res, "tracing disabled span overhead", prior.TracingDisabledNs, cur.TracingDisabledNs)
	return res
}

// tracingTol is the relative per-span overhead growth tolerated
// before a warning. A span lifecycle is tens of nanoseconds, where
// scheduler noise dwarfs real drift, so the band is wide; reports
// predating the fields (value 0) are skipped by the prior<=0 guard,
// and improvements are silent.
const tracingTol = 1.0

func warnTracing(res *CompareResult, what string, prior, cur int64) {
	if prior <= 0 {
		return
	}
	delta := float64(cur-prior) / float64(prior)
	if delta > tracingTol {
		res.warn("%s %+.0f%% (%d ns -> %d ns per span, tolerance +%.0f%%)",
			what, 100*delta, prior, cur, 100*tracingTol)
	}
}

func warnTiming(res *CompareResult, what string, prior, cur int64, tol float64) {
	if prior < timingFloorNs && cur < timingFloorNs {
		return
	}
	if prior <= 0 {
		return
	}
	delta := float64(cur-prior) / float64(prior)
	if delta > tol || delta < -tol {
		res.warn("%s wall time %+.1f%% (%.2fms -> %.2fms, tolerance ±%.0f%%)",
			what, 100*delta, float64(prior)/1e6, float64(cur)/1e6, 100*tol)
	}
}

// perRecordTol is the relative per-record allocation growth tolerated
// before a warning: allocation counts are near-deterministic (unlike
// wall time), so the band is tight, but GC-internal variation and old
// reports predating the fields (value 0, skipped via the prior<=0
// guard) keep this warn-only. Improvements are silent — the ratchet
// in tipsylint's budget file is where wins get locked in.
const perRecordTol = 0.10

func warnPerRecord(res *CompareResult, what string, prior, cur float64) {
	if prior <= 0 {
		return
	}
	delta := (cur - prior) / prior
	if delta > perRecordTol {
		res.warn("%s %+.1f%% (%.2f -> %.2f, tolerance +%.0f%%)",
			what, 100*delta, prior, cur, 100*perRecordTol)
	}
}

func compareScalarMap(res *CompareResult, what string, prior, cur map[string]int64) {
	for _, k := range sortedKeys(prior, cur) {
		pv, pok := prior[k]
		cv, cok := cur[k]
		switch {
		case !pok:
			res.mismatch("%s[%s]: absent in prior, current %d", what, k, cv)
		case !cok:
			res.mismatch("%s[%s]: prior %d, absent in current", what, k, pv)
		case pv != cv:
			res.mismatch("%s[%s]: prior %d, current %d", what, k, pv, cv)
		}
	}
}

func compareFloatMap(res *CompareResult, what string, prior, cur map[string]float64) {
	for _, k := range sortedKeys(prior, cur) {
		pv, pok := prior[k]
		cv, cok := cur[k]
		switch {
		case !pok:
			res.mismatch("%s[%s]: absent in prior, current %v", what, k, cv)
		case !cok:
			res.mismatch("%s[%s]: prior %v, absent in current", what, k, pv)
		case pv != cv:
			res.mismatch("%s[%s]: prior %v, current %v", what, k, pv, cv)
		}
	}
}

func sortedKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var keys []string
	for k := range a {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range b {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// checkIngestFloor gates ingest throughput: unlike the warn-only
// timing bands, a drop of the ingest stage's items_per_sec below
// floor × prior is an error. The ingest path is the component this
// repo optimizes hardest; a >10% regression (floor 0.9) is a real
// change, not scheduler noise, even on shared CI hardware when both
// reports come from the same run environment.
func checkIngestFloor(prior, cur *Report, floor float64) error {
	find := func(r *Report) (StageResult, bool) {
		for _, s := range r.Stages {
			if s.Name == "ingest" {
				return s, true
			}
		}
		return StageResult{}, false
	}
	p, pok := find(prior)
	c, cok := find(cur)
	if !pok || !cok {
		return fmt.Errorf("ingest-floor: ingest stage missing (prior %v, current %v)", pok, cok)
	}
	if p.ItemsPerSec <= 0 {
		return fmt.Errorf("ingest-floor: prior report has no ingest throughput")
	}
	if c.ItemsPerSec < floor*p.ItemsPerSec {
		return fmt.Errorf("ingest-floor: ingest throughput regressed: %.0f -> %.0f items/s (floor %.0f%% of prior = %.0f)",
			p.ItemsPerSec, c.ItemsPerSec, 100*floor, floor*p.ItemsPerSec)
	}
	fmt.Fprintf(os.Stdout, "compare: ingest throughput %.0f items/s >= floor %.0f (%.0f%% of prior %.0f)\n",
		c.ItemsPerSec, floor*p.ItemsPerSec, 100*floor, p.ItemsPerSec)
	return nil
}

// loadReport reads a prior BENCH_*.json.
func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
