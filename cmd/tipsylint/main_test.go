package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsLintClean lints the entire repository through the real
// CLI entry point — the same invocation scripts/check.sh gates on —
// and requires a clean exit. If this fails, a change somewhere in the
// tree violated a project convention; run `go run ./cmd/tipsylint
// ./...` for the findings.
func TestRepoIsLintClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("tipsylint exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}

// TestRepoHasZeroSuppressions pins the suppression budget at zero:
// every convention violation the analyzers find must be fixed in the
// source, never silenced. If a directive ever becomes unavoidable,
// this count is the place where adding it is a reviewed decision.
func TestRepoHasZeroSuppressions(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-suppressions", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("tipsylint -suppressions exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "" {
		t.Errorf("repository carries //lint:ignore directives (want zero):\n%s", got)
	}
}

// TestJSONOutputIsEmptyArrayWhenClean pins the -json contract
// downstream tooling parses.
func TestJSONOutputIsEmptyArrayWhenClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "./internal/wan"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("want empty JSON array, got:\n%s", out.String())
	}
}

// TestFindingsExitOne pins the findings path: a fixture full of
// violations must report them and exit 1 — not 0 (missed) and not 2
// (which is reserved for infrastructure failures).
func TestFindingsExitOne(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-rules", "locks", "internal/lint/testdata/locks/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[locks]") {
		t.Errorf("findings missing from stdout:\n%s", out.String())
	}
}

// TestLoadErrorsExitTwo pins the load-failure paths at exit 2: a
// package that cannot be parsed and one that cannot be type-checked
// are infrastructure failures, distinct from findings (exit 1).
func TestLoadErrorsExitTwo(t *testing.T) {
	writePkg := func(t *testing.T, src string) string {
		dir := filepath.Join(t.TempDir(), "brokenpkg")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("parse error", func(t *testing.T) {
		dir := writePkg(t, "package broken\nfunc f( {}\n")
		var out, errOut strings.Builder
		if code := run([]string{dir}, &out, &errOut); code != 2 {
			t.Errorf("exit %d, want 2\n%s", code, errOut.String())
		}
	})
	t.Run("type error", func(t *testing.T) {
		dir := writePkg(t, "package broken\nfunc f() int { return \"nope\" }\n")
		var out, errOut strings.Builder
		if code := run([]string{dir}, &out, &errOut); code != 2 {
			t.Errorf("exit %d, want 2\n%s", code, errOut.String())
		}
		if !strings.Contains(errOut.String(), "typecheck") {
			t.Errorf("stderr does not mention the typecheck failure: %s", errOut.String())
		}
	})
	t.Run("no packages", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run([]string{filepath.Join(t.TempDir(), "absent")}, &out, &errOut); code != 2 {
			t.Errorf("exit %d, want 2\n%s", code, errOut.String())
		}
	})
}

// TestHotpathBudgetMatchesTree is the ratchet's anchor: regenerating
// the budget from the tree must reproduce the committed
// .tipsy-allocbudget.json byte for byte (so `-update-budget` produces
// no diff), and a second regeneration must be idempotent.
func TestHotpathBudgetMatchesTree(t *testing.T) {
	committed, err := os.ReadFile(filepath.Join("..", "..", ".tipsy-allocbudget.json"))
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "budget.json")
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "hotpath", "-budget", tmp, "-update-budget", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-update-budget exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	first, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, committed) {
		t.Errorf("committed budget is out of date with the tree; run `go run ./cmd/tipsylint -rules hotpath -update-budget ./...` and commit the result\n%s", out.String())
	}
	if code := run([]string{"-rules", "hotpath", "-budget", tmp, "-update-budget", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("second -update-budget exited %d:\n%s", code, errOut.String())
	}
	second, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("-update-budget is not idempotent: second run changed the file")
	}
}

// TestUsageErrors pins the exit-2 paths.
func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no packages: exit %d, want 2", code)
	}
	if code := run([]string{"-rules", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Errorf("unknown rule: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuch") {
		t.Errorf("stderr does not name the unknown rule: %s", errOut.String())
	}
}
