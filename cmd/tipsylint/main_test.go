package main

import (
	"strings"
	"testing"
)

// TestRepoIsLintClean lints the entire repository through the real
// CLI entry point — the same invocation scripts/check.sh gates on —
// and requires a clean exit. If this fails, a change somewhere in the
// tree violated a project convention; run `go run ./cmd/tipsylint
// ./...` for the findings.
func TestRepoIsLintClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("tipsylint exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}

// TestRepoHasZeroSuppressions pins the suppression budget at zero:
// every convention violation the analyzers find must be fixed in the
// source, never silenced. If a directive ever becomes unavoidable,
// this count is the place where adding it is a reviewed decision.
func TestRepoHasZeroSuppressions(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-suppressions", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("tipsylint -suppressions exited %d:\n%s%s", code, out.String(), errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "" {
		t.Errorf("repository carries //lint:ignore directives (want zero):\n%s", got)
	}
}

// TestJSONOutputIsEmptyArrayWhenClean pins the -json contract
// downstream tooling parses.
func TestJSONOutputIsEmptyArrayWhenClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "./internal/wan"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("want empty JSON array, got:\n%s", out.String())
	}
}

// TestUsageErrors pins the exit-2 paths.
func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no packages: exit %d, want 2", code)
	}
	if code := run([]string{"-rules", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Errorf("unknown rule: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuch") {
		t.Errorf("stderr does not name the unknown rule: %s", errOut.String())
	}
}
