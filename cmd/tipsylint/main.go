// Command tipsylint is the repository's static-analysis gate. It
// walks the given packages and enforces the project conventions that
// go vet cannot: seeded-simulation determinism, mutex hygiene,
// wire-encoder error handling, goroutine lifecycle discipline,
// registry-backed metrics hygiene, and the hot-path allocation
// budget.
//
// Usage:
//
//	tipsylint [-json|-sarif] [-suppressions] [-stats] [-rules determinism,locks,...] ./...
//	tipsylint -update-budget [-budget file] ./...
//
// Exit status is 0 when clean, 1 when findings were reported, and 2
// on usage, load, or typecheck errors. Individual findings are
// silenced in the source with a justified directive on or above the
// offending line:
//
//	//lint:ignore <rule> <reason>
//
// -suppressions inventories those directives instead of linting and
// exits non-zero if any directive lacks a reason.
//
// -update-budget regenerates the hot-path allocation ratchet
// (.tipsy-allocbudget.json at the module root, or -budget's path)
// from the tree as analyzed, printing each entry that changed. The
// hotpath rule fails when a count grows beyond the committed file;
// shrinking a count requires committing the regenerated file, which
// is how allocation wins are locked in.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tipsy/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tipsylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	suppressions := fs.Bool("suppressions", false,
		"list //lint:ignore directives instead of linting; exit 1 on any reasonless directive")
	ruleList := fs.String("rules", "", "comma-separated rule subset (default: all)")
	stats := fs.Bool("stats", false,
		"print per-rule wall time to stderr after the run")
	budgetPath := fs.String("budget", "",
		"hot-path allocation budget file (default: <module root>/"+lint.BudgetFilename+")")
	updateBudget := fs.Bool("update-budget", false,
		"rewrite the allocation budget file to match the tree instead of linting")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tipsylint [-json|-sarif] [-suppressions] [-stats] [-rules list] [-update-budget] packages...")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nrules:")
		for _, r := range lint.Rules() {
			fmt.Fprintf(stderr, "  %-12s %s\n", r.Name, r.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	if *budgetPath == "" {
		*budgetPath = filepath.Join(loader.ModuleRoot, lint.BudgetFilename)
	}

	rules := lint.RulesWithBudget(*budgetPath)
	hotpathSelected := true
	if *ruleList != "" {
		byName := map[string]lint.Rule{}
		for _, r := range rules {
			byName[r.Name] = r
		}
		rules = rules[:0]
		hotpathSelected = false
		for _, name := range strings.Split(*ruleList, ",") {
			r, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tipsylint: unknown rule %q\n", name)
				return 2
			}
			if r.Name == "hotpath" {
				hotpathSelected = true
			}
			rules = append(rules, r)
		}
	}

	dirs, err := lint.ExpandPatterns(loader.ModuleRoot, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	pkgs, err := loader.LoadDirs(dirs, 0)
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "tipsylint: no packages matched")
		return 2
	}
	// Typecheck failures are load errors, not findings: the analyzers
	// run on what did check, but the exit status must say the tree
	// could not be fully analyzed.
	badLoad := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			fmt.Fprintf(stderr, "tipsylint: typecheck: %v\n", terr)
			badLoad = true
		}
	}

	if *suppressions {
		if bad := lint.WriteSuppressions(stdout, lint.CollectSuppressions(pkgs)); bad {
			return 1
		}
		if badLoad {
			return 2
		}
		return 0
	}

	if *updateBudget {
		rep := lint.AnalyzeHotpaths(lint.NewProgram(pkgs))
		if old, err := lint.LoadBudget(*budgetPath); err == nil {
			for _, d := range lint.DiffBudget(old, rep, nil) {
				fmt.Fprintf(stdout, "budget %s: %s %s %d -> %d\n",
					d.Kind, d.ID, d.Category, d.Budgeted, d.Observed)
			}
		}
		nb := lint.BudgetFromReport(rep)
		if err := os.WriteFile(*budgetPath, nb.Marshal(), 0o644); err != nil {
			fmt.Fprintln(stderr, "tipsylint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s (%d budgeted function(s))\n", *budgetPath, len(nb.Budgets))
		if badLoad {
			return 2
		}
		return 0
	}

	diags, ruleStats := lint.RunStats(pkgs, rules)
	if *stats {
		// Stats go to stderr so -json/-sarif payloads on stdout stay
		// machine-parseable.
		fmt.Fprintln(stderr, "rule timings:")
		for _, s := range ruleStats {
			fmt.Fprintf(stderr, "  %-14s %10.2fms\n", s.Name,
				float64(s.Elapsed.Microseconds())/1000)
		}
	}
	if hotpathSelected {
		// Budget drift with no source anchor (stale or shrunk entries)
		// is reported against the budget file itself.
		budgetDiags, err := lint.BudgetDiagnostics(pkgs, *budgetPath)
		if err != nil {
			fmt.Fprintln(stderr, "tipsylint:", err)
			return 2
		}
		diags = append(diags, budgetDiags...)
		lint.SortDiagnostics(diags)
	}
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "tipsylint:", err)
			return 2
		}
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, diags, rules); err != nil {
			fmt.Fprintln(stderr, "tipsylint:", err)
			return 2
		}
	default:
		lint.WriteText(stdout, diags)
	}
	if badLoad {
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
