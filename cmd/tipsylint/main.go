// Command tipsylint is the repository's static-analysis gate. It
// walks the given packages and enforces the project conventions that
// go vet cannot: seeded-simulation determinism, mutex hygiene,
// wire-encoder error handling, goroutine lifecycle discipline, and
// registry-backed metrics hygiene.
//
// Usage:
//
//	tipsylint [-json|-sarif] [-suppressions] [-rules determinism,locks,...] ./...
//
// Exit status is 0 when clean, 1 when findings were reported, and 2
// on usage or load errors. Individual findings are silenced in the
// source with a justified directive on or above the offending line:
//
//	//lint:ignore <rule> <reason>
//
// -suppressions inventories those directives instead of linting and
// exits non-zero if any directive lacks a reason.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tipsy/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tipsylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	suppressions := fs.Bool("suppressions", false,
		"list //lint:ignore directives instead of linting; exit 1 on any reasonless directive")
	ruleList := fs.String("rules", "", "comma-separated rule subset (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tipsylint [-json|-sarif] [-suppressions] [-rules list] packages...")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nrules:")
		for _, r := range lint.Rules() {
			fmt.Fprintf(stderr, "  %-12s %s\n", r.Name, r.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	rules := lint.Rules()
	if *ruleList != "" {
		byName := map[string]lint.Rule{}
		for _, r := range rules {
			byName[r.Name] = r
		}
		rules = rules[:0]
		for _, name := range strings.Split(*ruleList, ",") {
			r, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tipsylint: unknown rule %q\n", name)
				return 2
			}
			rules = append(rules, r)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	dirs, err := lint.ExpandPatterns(loader.ModuleRoot, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	pkgs, err := loader.LoadDirs(dirs, 0)
	if err != nil {
		fmt.Fprintln(stderr, "tipsylint:", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			fmt.Fprintf(stderr, "tipsylint: typecheck: %v\n", terr)
		}
	}

	if *suppressions {
		if bad := lint.WriteSuppressions(stdout, lint.CollectSuppressions(pkgs)); bad {
			return 1
		}
		return 0
	}

	diags := lint.Run(pkgs, rules)
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "tipsylint:", err)
			return 2
		}
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, diags, rules); err != nil {
			fmt.Fprintln(stderr, "tipsylint:", err)
			return 2
		}
	default:
		lint.WriteText(stdout, diags)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
