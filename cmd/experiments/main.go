// Command experiments regenerates every table and figure of the
// paper's evaluation over the simulated substrate. Each experiment is
// selectable by name; see -list.
//
// Usage:
//
//	experiments -scale small -run table4,table5
//	experiments -scale full -run all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/risk"
	"tipsy/internal/wan"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, selects the
// experiments, and writes their tables to stdout, returning the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed  = fs.Int64("seed", 1, "simulation seed (the appendix D period uses seed+1000)")
		scale = fs.String("scale", "small", "environment scale: small | full")
		run   = fs.String("run", "all", "comma-separated experiment names, or 'all'")
		list  = fs.Bool("list", false, "list experiment names and exit")
		csvTo = fs.String("csv", "", "also write plot-ready CSV files to this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// csvErr reports a CSV write failure without aborting the run.
	csvErr := func(err error) {
		if err != nil {
			fmt.Fprintf(stderr, "csv: %v\n", err)
		}
	}
	accCSV := func(name string, rows []eval.AccuracyRow) {
		if *csvTo != "" {
			csvErr(eval.WriteAccuracyCSV(*csvTo, eval.CSVNameForTable(name), rows))
		}
	}

	type experiment struct {
		name string
		desc string
		fn   func(*eval.Env)
	}
	experiments := []experiment{
		{"table1", "feature cardinalities", func(e *eval.Env) {
			c := eval.Table1(e)
			fmt.Fprint(stdout, eval.FormatTable1(c))
			if *csvTo != "" {
				csvErr(eval.WriteTable1CSV(*csvTo, c))
			}
		}},
		{"fig2", "CDF of bytes by source AS distance", func(e *eval.Env) {
			pts := eval.Fig2(e, e.Train)
			fmt.Fprint(stdout, eval.FormatFig2(pts))
			if *csvTo != "" {
				csvErr(eval.WriteFig2CSV(*csvTo, pts))
			}
		}},
		{"fig3", "link spread per source AS by distance", func(e *eval.Env) {
			rows := eval.Fig3(e, e.Train)
			fmt.Fprint(stdout, eval.FormatFig3(rows))
			if *csvTo != "" {
				csvErr(eval.WriteFig3CSV(*csvTo, rows))
			}
		}},
		{"fig5", "oracle accuracy vs k", func(e *eval.Env) {
			pts := eval.Fig5(e, nil)
			fmt.Fprint(stdout, eval.FormatFig5(pts))
			if *csvTo != "" {
				csvErr(eval.WriteFig5CSV(*csvTo, pts))
			}
		}},
		{"fig6", "earliest outage per link over a year", func(*eval.Env) {
			pts := eval.Fig6(1500, 1.6, *seed, 15)
			fmt.Fprint(stdout, eval.FormatFig6(pts))
			if *csvTo != "" {
				csvErr(eval.WriteFig6CSV(*csvTo, pts))
			}
		}},
		{"fig7", "days since last outage", func(*eval.Env) {
			pts := eval.Fig7(1500, 1.6, *seed, 15)
			fmt.Fprint(stdout, eval.FormatFig7(pts))
			if *csvTo != "" {
				csvErr(eval.WriteFig7CSV(*csvTo, pts))
			}
		}},
		{"table4", "overall prediction accuracy", func(e *eval.Env) {
			rows := eval.Table4(e)
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 4: overall prediction accuracy", rows))
			accCSV("table4", rows)
		}},
		{"table5", "accuracy on all link outages", func(e *eval.Env) {
			seen, unseen := eval.OutageBytesSplit(e)
			fmt.Fprintf(stdout, "outage-affected bytes: %.1f%% unseen in training\n",
				100*unseen/(seen+unseen+1e-12))
			rows := eval.TableOutages(e, eval.AllOutages)
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 5: prediction accuracy, all link outages", rows))
			accCSV("table5", rows)
		}},
		{"table6", "accuracy on seen outages", func(e *eval.Env) {
			rows := eval.TableOutages(e, eval.SeenOutages)
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 6: prediction accuracy, seen outages", rows))
			accCSV("table6", rows)
		}},
		{"table7", "accuracy on unseen outages", func(e *eval.Env) {
			rows := eval.TableOutages(e, eval.UnseenOutages)
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 7: prediction accuracy, unseen outages", rows))
			accCSV("table7", rows)
		}},
		{"table9", "overall accuracy incl. Naive Bayes (App. A)", func(e *eval.Env) {
			rows := eval.Table9(e)
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 9: overall accuracy with Naive Bayes", rows))
			accCSV("table9", rows)
		}},
		{"table10", "outage accuracy incl. Naive Bayes (App. A)", func(e *eval.Env) {
			rows := eval.Table10(e)
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 10: outage accuracy with Naive Bayes", rows))
			accCSV("table10", rows)
		}},
		{"fig9", "accuracy vs training window length (App. B)", func(e *eval.Env) {
			lengths, periods, testDays := []int{3, 7, 14, 21}, 2, 3
			if *scale == "full" {
				lengths, periods, testDays = []int{3, 7, 14, 21, 28}, 4, 7
			}
			pts := eval.Fig9(e, lengths, periods, testDays)
			fmt.Fprint(stdout, eval.FormatFig9(pts))
			if *csvTo != "" {
				csvErr(eval.WriteFig9CSV(*csvTo, pts))
			}
		}},
		{"fig10", "daily accuracy decay after training (App. B)", func(e *eval.Env) {
			days := 7
			if *scale == "full" {
				days = 14
			}
			pts := eval.Fig10(e, days)
			fmt.Fprint(stdout, eval.FormatFig10(pts))
			if *csvTo != "" {
				csvErr(eval.WriteFig10CSV(*csvTo, pts))
			}
		}},
		{"fig11", "accuracy across sliding windows (App. B)", func(e *eval.Env) {
			windows := 4
			if *scale == "full" {
				windows = 28
			}
			stats := eval.Fig11(e, windows)
			fmt.Fprint(stdout, eval.FormatFig11(stats))
			if *csvTo != "" {
				csvErr(eval.WriteFig11CSV(*csvTo, stats))
			}
		}},
		{"table12", "links at risk of overload (App. C)", func(e *eval.Env) {
			rows := risk.AtRisk(e.Sim, e.Hist(features.SetAL), e.Test, risk.DefaultOptions())
			fmt.Fprint(stdout, risk.Format(rows, e.Sim, 8))
		}},
		{"table13", "overall accuracy, second period (App. D)", func(*eval.Env) {
			rows := eval.Table4(secondEnv(*scale, *seed))
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 13: overall accuracy (second period)", rows))
			accCSV("table13", rows)
		}},
		{"table14", "outage accuracy, second period (App. D)", func(*eval.Env) {
			rows := eval.TableOutages(secondEnv(*scale, *seed), eval.AllOutages)
			fmt.Fprint(stdout, eval.FormatAccuracyTable("Table 14: outage accuracy (second period)", rows))
			accCSV("table14", rows)
		}},
		{"table15", "links at risk, second period (App. D)", func(*eval.Env) {
			e2 := secondEnv(*scale, *seed)
			rows := risk.AtRisk(e2.Sim, e2.Hist(features.SetAL), e2.Test, risk.DefaultOptions())
			out := risk.Format(rows, e2.Sim, 8)
			fmt.Fprint(stdout, strings.Replace(out, "Table 12", "Table 15", 1))
		}},
	}

	if *list {
		for _, ex := range experiments {
			fmt.Fprintf(stdout, "%-10s %s\n", ex.name, ex.desc)
		}
		return 0
	}

	want := map[string]bool{}
	runAll := *run == "all"
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	valid := map[string]bool{}
	for _, ex := range experiments {
		valid[ex.name] = true
	}
	if !runAll {
		var unknown []string
		for name := range want {
			if !valid[name] {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
			return 2
		}
	}

	needEnv := false
	for _, ex := range experiments {
		if (runAll || want[ex.name]) && ex.name != "fig6" && ex.name != "fig7" {
			needEnv = true
		}
	}
	var env *eval.Env
	if needEnv {
		start := time.Now()
		env = buildEnv(*scale, *seed)
		fmt.Fprintf(stdout, "environment: %d ASes, %d links, %d flows, train %dd test %dd, built in %v\n\n",
			env.Graph.Len(), env.Sim.NumLinks(), len(env.Workload.Flows),
			env.Cfg.TrainDays, env.Cfg.TestDays, time.Since(start).Round(time.Millisecond))
	}
	for _, ex := range experiments {
		if !runAll && !want[ex.name] {
			continue
		}
		start := time.Now()
		ex.fn(env)
		fmt.Fprintf(stdout, "[%s done in %v]\n\n", ex.name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

var (
	secondOnce sync.Once
	secondE    *eval.Env
)

// secondEnv lazily builds the Appendix D environment (a different
// time period, i.e. a different seed) exactly once.
func secondEnv(scale string, seed int64) *eval.Env {
	secondOnce.Do(func() { secondE = buildEnv(scale, seed+1000) })
	return secondE
}

func buildEnv(scale string, seed int64) *eval.Env {
	var cfg eval.EnvConfig
	switch scale {
	case "full":
		cfg = eval.DefaultEnvConfig(seed)
	default:
		cfg = eval.SmallEnvConfig(seed)
	}
	// Appendix experiments extend past the standard split; give the
	// outage schedule headroom.
	cfg.SimCfg.HorizonHours = wan.Hour((cfg.TrainDays+cfg.TestDays)*24) + 24*40
	return eval.Build(cfg)
}
