package main

import (
	"strings"
	"testing"
)

// TestListNamesEveryExperiment exercises the entry point in -list
// mode and pins the experiment catalogue.
func TestListNamesEveryExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{
		"table1", "table4", "table5", "fig6", "fig9", "table15",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %s:\n%s", want, out.String())
		}
	}
}

// TestUnknownExperimentRejected pins the exit-2-with-usage contract.
func TestUnknownExperimentRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuch") {
		t.Errorf("stderr does not name the unknown experiment: %s", errOut.String())
	}
}

// TestFig6RunsWithoutEnvironment runs the one experiment that needs
// no simulated environment, end to end.
func TestFig6RunsWithoutEnvironment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "fig6", "-scale", "small"}, &out, &errOut); code != 0 {
		t.Fatalf("fig6 exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Figure 6") {
		t.Errorf("fig6 output missing its header:\n%s", out.String())
	}
}
