package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tipsy/internal/core"
	"tipsy/internal/features"
)

// smallServer builds a cheap one-day server, bypassing the shared
// singleton so tests can mutate serving state freely.
func smallServer(t *testing.T, seed int64) *server {
	t.Helper()
	s := newServer(seed, 1)
	s.advanceDays(1)
	s.retrain()
	if s.model == nil {
		t.Fatal("bootstrap did not produce a model")
	}
	return s
}

func TestHealthzDegradedWhenUntrained(t *testing.T) {
	s := newServer(31, 1) // no bootstrap: nothing trained
	rr := get(t, s, "/healthz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("untrained server healthz = %d, want 503", rr.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "degraded" || body["model_ready"] != false {
		t.Errorf("degraded body: %v", body)
	}
}

func TestHealthzDegradedWhenStale(t *testing.T) {
	s := smallServer(t, 32)
	s.staleAfter = 24
	if rr := get(t, s, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("fresh model healthz = %d, want 200", rr.Code)
	}
	// Telemetry advances two days with no retrain: past the bound.
	s.advanceDays(2)
	rr := get(t, s, "/healthz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale model healthz = %d, want 503", rr.Code)
	}
	var body map[string]any
	json.Unmarshal(rr.Body.Bytes(), &body)
	if body["status"] != "degraded" || body["model_age_hours"].(float64) != 48 {
		t.Errorf("stale body: %v", body)
	}
	// A retrain restores health.
	s.retrain()
	if rr := get(t, s, "/healthz"); rr.Code != http.StatusOK {
		t.Errorf("healthz after retrain = %d, want 200", rr.Code)
	}
}

func TestPredictLadderFallsBackToGeo(t *testing.T) {
	s := smallServer(t, 33)
	// A flow the models know answers from the ensemble.
	if len(s.records) == 0 {
		t.Fatal("no records")
	}
	known := s.records[0].Flow
	preds, rung := s.predict(core.Query{Flow: known, K: 3})
	if rung != "ensemble" || len(preds) == 0 {
		t.Fatalf("known flow answered by %q with %d predictions", rung, len(preds))
	}
	// A flow from an AS the window never saw: every trained model is
	// empty for it, and the geographic fallback must still answer.
	novel := features.FlowFeatures{AS: 4200000001, Prefix: 0x01020300, Loc: 3, Region: known.Region, Type: known.Type}
	preds, rung = s.predict(core.Query{Flow: novel, K: 3})
	if rung != "geo" {
		t.Fatalf("novel flow answered by %q, want geo", rung)
	}
	if len(preds) == 0 {
		t.Fatal("geo fallback returned nothing")
	}
	fb := s.fallbackSnapshot()
	if fb.Ensemble != 1 || fb.Geo != 1 {
		t.Errorf("fallback counters = %+v", fb)
	}
	// The counters surface in /healthz.
	var body map[string]any
	rr := get(t, s, "/healthz")
	json.Unmarshal(rr.Body.Bytes(), &body)
	counters, ok := body["fallbacks"].(map[string]any)
	if !ok || counters["geo"].(float64) != 1 {
		t.Errorf("healthz fallbacks: %v", body["fallbacks"])
	}
}

func TestPredictServesWithNoModelAtAll(t *testing.T) {
	// Degraded-mode serving: before any training, the API still
	// answers via GeoNearest instead of refusing.
	s := newServer(34, 1)
	f := features.FlowFeatures{AS: 7, Prefix: 0x0a000100, Loc: 2, Region: 1, Type: 1}
	preds, rung := s.predict(core.Query{Flow: f, K: 3})
	if rung != "geo" || len(preds) == 0 {
		t.Fatalf("untrained server: rung=%q preds=%d", rung, len(preds))
	}
}

func TestCheckpointRecoveryOnRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ck")
	a := smallServer(t, 35)
	a.checkpointPath = path
	if err := a.saveCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// A "restarted" process over the same WAN recovers the models
	// without retraining.
	b := newServer(35, 1)
	b.checkpointPath = path
	if err := b.recoverCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if !b.recovered || b.model == nil {
		t.Fatal("recovery did not install a serving model")
	}
	if b.trainedAt != a.trainedAt || b.simulated != a.trainedAt {
		t.Errorf("recovered clock: trainedAt=%d simulated=%d, want both %d",
			b.trainedAt, b.simulated, a.trainedAt)
	}
	// Recovered predictions are identical to the originals.
	for i := 0; i < len(a.records) && i < 50; i += 10 {
		q := core.Query{Flow: a.records[i].Flow, K: 3}
		pa, pb := a.model.Predict(q), b.model.Predict(q)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("record %d: predictions diverge after recovery:\n a %+v\n b %+v", i, pa, pb)
		}
	}
	// A fresh model (age 0, within staleness bound) serves healthily.
	b.staleAfter = 48
	if rr := get(t, b, "/healthz"); rr.Code != http.StatusOK {
		t.Errorf("recovered healthz = %d: %s", rr.Code, rr.Body.String())
	}
}

func TestRecoverRejectsCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ck")
	a := smallServer(t, 36)
	a.checkpointPath = path
	if err := a.saveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate: the shape a crash would leave without atomic rename.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	b := newServer(36, 1)
	b.checkpointPath = path
	if err := b.recoverCheckpoint(); err == nil {
		t.Fatal("truncated checkpoint recovered successfully")
	}
	if b.model != nil || b.recovered {
		t.Error("failed recovery must leave the server cold")
	}
}

func TestRunGracefulShutdownCheckpoints(t *testing.T) {
	s := smallServer(t, 37)
	s.checkpointPath = filepath.Join(t.TempDir(), "model.ck")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		// Port 0 picks a free port; the ticker never fires in-test.
		errCh <- run(ctx, s, "127.0.0.1:0", time.Hour)
	}()
	cancel() // simulate SIGINT/SIGTERM

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after shutdown signal")
	}
	// The shutdown path must have written the final checkpoint.
	ck, err := core.LoadCheckpointFile(s.checkpointPath)
	if err != nil {
		t.Fatalf("no usable checkpoint after shutdown: %v", err)
	}
	if ck.TrainedAt != s.trainedAt || len(ck.Models) != 3 {
		t.Errorf("checkpoint contents: trainedAt=%d models=%d", ck.TrainedAt, len(ck.Models))
	}
}
