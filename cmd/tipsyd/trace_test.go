package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"tipsy/internal/bundle"
	"tipsy/internal/monitor"
	"tipsy/internal/obsv"
)

// traceTestServer builds a trained server with tracing on and the
// span clock replaced by a deterministic counter. The swap happens
// after bootstrap so training's clock reads don't shift the counter:
// the first traced request always sees tick 1, span ID 1.
func traceTestServer(t *testing.T, sampleEvery uint64, capacity int) (*server, *atomic.Int64) {
	t.Helper()
	s := buildServer(3, 4)
	var tick atomic.Int64
	s.clock = func() int64 { return tick.Add(1) }
	s.initTrace(sampleEvery, capacity)
	return s, &tick
}

// samplePredictBody builds a /v1/predict request for a flow the model
// has seen, via /v1/sample — the same known-tuple idiom main_test
// uses.
func samplePredictBody(t *testing.T, s *server) []byte {
	t.Helper()
	rr := get(t, s, "/v1/sample")
	var samples []map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &samples); err != nil || len(samples) == 0 {
		t.Fatalf("sample endpoint: %v / %s", err, rr.Body)
	}
	body, _ := json.Marshal(map[string]any{
		"flows": []map[string]any{{
			"src_addr": samples[0]["src_addr"],
			"src_as":   samples[0]["src_as"],
			"region":   samples[0]["region"],
			"service":  samples[0]["service"],
			"bytes":    1e9,
		}},
		"k": 3,
	})
	return body
}

// postTraced sends a request through the full handler chain (span
// middleware included), unlike get's bare mux.
func postTraced(s *server, path string, body []byte, hdr http.Header) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	rr := httptest.NewRecorder()
	s.handler().ServeHTTP(rr, req)
	return rr
}

// traceIDFromTraceparent pulls the 32-hex trace id out of a
// traceparent header value.
func traceIDFromTraceparent(t *testing.T, tp string) obsv.TraceID {
	t.Helper()
	parts := strings.Split(tp, "-")
	if len(parts) != 4 {
		t.Fatalf("malformed traceparent %q", tp)
	}
	id, ok := obsv.ParseTraceID(parts[1])
	if !ok {
		t.Fatalf("bad trace id in traceparent %q", tp)
	}
	return id
}

// TestPredictTraceGolden locks the span dump for one /v1/predict
// request: with a counter clock and a fresh tracer the request span,
// feature_encode, and predict children — IDs, timestamps, attributes
// — are a pure function of the seed.
func TestPredictTraceGolden(t *testing.T) {
	s, _ := traceTestServer(t, 1, 256)
	body := samplePredictBody(t, s)

	rr := postTraced(s, "/v1/predict", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rr.Code, rr.Body)
	}
	tp := rr.Header().Get(obsv.TraceparentHeader)
	if tp == "" {
		t.Fatal("no traceparent on predict response")
	}
	id := traceIDFromTraceparent(t, tp)

	dump := get(t, s, fmt.Sprintf("/debug/trace?trace=%016x%016x", id.Hi, id.Lo))
	if dump.Code != http.StatusOK {
		t.Fatalf("trace dump status %d: %s", dump.Code, dump.Body)
	}
	got := dump.Body.Bytes()

	golden := filepath.Join("testdata", "predict_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("predict trace dump diverged from golden:\n got: %s\nwant: %s", got, want)
	}
}

// TestCycleTraceEndToEnd drives one full simulated day plus retrain
// under a single root span and checks every pipeline stage — ingest,
// aggregation, drain, truth join, window close, training, shadow
// predictions — lands in the flight recorder linked by one trace ID.
func TestCycleTraceEndToEnd(t *testing.T) {
	s, _ := traceTestServer(t, 1, 8192)

	root := s.tracer.StartRoot("cycle")
	s.advanceDaysTraced(1, root)
	s.retrainTraced(root)
	root.End()

	spans := s.flight.TraceSpans(root.Context().Trace)
	counts := map[string]int{}
	for _, r := range spans {
		counts[r.Name]++
		if r.Trace != root.Context().Trace {
			t.Fatalf("TraceSpans leaked foreign trace %v", r.Trace)
		}
	}
	for _, name := range []string{
		"cycle", "ingest", "aggregate_batch", "drain", "truth_join",
		"truth_close", "retrain", "train", "shadow_predict", "predict",
	} {
		if counts[name] == 0 {
			t.Errorf("cycle trace missing %q spans (have %v)", name, counts)
		}
	}
	if counts["cycle"] != 1 || counts["retrain"] != 1 || counts["train"] != 1 {
		t.Errorf("singleton span duplicated: %v", counts)
	}
	// The shadow sample is deterministic and capped.
	if counts["predict"] > shadowSampleCap {
		t.Errorf("predict spans %d exceed shadow cap %d", counts["predict"], shadowSampleCap)
	}
	// Parent links: train under retrain, retrain under cycle.
	byName := map[string]obsv.SpanRecord{}
	for _, r := range spans {
		byName[r.Name] = r
	}
	if byName["retrain"].Parent != byName["cycle"].ID {
		t.Error("retrain not parented under cycle")
	}
	if byName["train"].Parent != byName["retrain"].ID {
		t.Error("train not parented under retrain")
	}
	if byName["truth_join"].Parent != byName["drain"].ID {
		t.Error("truth_join not parented under drain")
	}
}

// TestTraceparentPropagation: an inbound traceparent parents the
// request span (marked remote), and the response echoes the same
// trace so callers can stitch across hops.
func TestTraceparentPropagation(t *testing.T) {
	s, _ := traceTestServer(t, 1, 256)
	body := samplePredictBody(t, s)

	hdr := http.Header{}
	inbound := "00-0123456789abcdeffedcba9876543210-1a2b3c4d5e6f7081-01"
	hdr.Set(obsv.TraceparentHeader, inbound)
	rr := postTraced(s, "/v1/predict", body, hdr)
	if rr.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rr.Code, rr.Body)
	}
	tp := rr.Header().Get(obsv.TraceparentHeader)
	wantTrace, _ := obsv.ParseTraceID("0123456789abcdeffedcba9876543210")
	if got := traceIDFromTraceparent(t, tp); got != wantTrace {
		t.Fatalf("response trace %v, want inbound %v", got, wantTrace)
	}
	if strings.Contains(tp, "1a2b3c4d5e6f7081") {
		t.Fatalf("response span id not re-minted: %s", tp)
	}

	spans := s.flight.TraceSpans(wantTrace)
	if len(spans) == 0 {
		t.Fatal("no spans recorded under the inbound trace")
	}
	var req obsv.SpanRecord
	for _, r := range spans {
		if r.Name == "/v1/predict" {
			req = r
		}
	}
	if !req.Remote {
		t.Errorf("request span not marked remote: %+v", req)
	}
	if req.Parent != obsv.SpanID(0x1a2b3c4d5e6f7081) {
		t.Errorf("request span parent %x, want inbound span id", req.Parent)
	}

	// An unsampled inbound context must not record anything new.
	before := s.flight.Len()
	hdr.Set(obsv.TraceparentHeader, "00-0123456789abcdeffedcba9876543210-1a2b3c4d5e6f7081-00")
	if rr := postTraced(s, "/v1/predict", body, hdr); rr.Code != http.StatusOK {
		t.Fatalf("unsampled predict status %d", rr.Code)
	}
	if after := s.flight.Len(); after != before {
		t.Errorf("unsampled request recorded %d spans", after-before)
	}
}

// TestBundleAlarmRoundTrip is the acceptance scenario for diagnostic
// bundles: the post-withdrawal accuracy collapse fires monitor
// alarms, each transition writes a bundle via the OnAlarm hook, and
// every bundle passes CRC verification with all sections present.
func TestBundleAlarmRoundTrip(t *testing.T) {
	mcfg := monitor.DefaultConfig()
	mcfg.WindowHours = 24
	mcfg.JoinHorizonHours = 24
	mcfg.MinGroups = 10
	mcfg.FireAfter = 2
	mcfg.ClearAfter = 2
	s := newServerCfg(17, 4, mcfg)
	s.bundleDir = t.TempDir()
	s.initTrace(1, 2048)
	s.advanceDays(4)
	s.retrain()
	s.advanceDays(1)
	s.retrain()

	// Withdraw the top predicted links under a stale model: the
	// collapse the paper documents, and the alarm trigger. The day
	// runs under a cycle root the way the daemon's ticker loop traces
	// it, so the bundle's span dump captures the incident.
	withdrawTopPredicted(s)
	s.mon.NoteWithdrawal(simHour(s))
	root := s.tracer.StartRoot("cycle")
	s.advanceDaysTraced(1, root)
	root.End()

	entries, err := os.ReadDir(s.bundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no bundles written by the alarm hook")
	}
	sawAlarm := false
	for _, e := range entries {
		if strings.Contains(e.Name(), "alarm-") {
			sawAlarm = true
		}
		dir := filepath.Join(s.bundleDir, e.Name())
		man, err := bundle.Verify(dir)
		if err != nil {
			t.Fatalf("bundle %s failed verification: %v", e.Name(), err)
		}
		if !strings.HasPrefix(man.Reason, "alarm-") {
			t.Errorf("bundle %s reason %q", e.Name(), man.Reason)
		}
		have := map[string]bool{}
		for _, ent := range man.Entries {
			have[ent.Name] = true
		}
		for _, want := range []string{
			"metrics.prom", "quality.json", "spans.json", "trace_events.json",
			"log_tail.txt", "heap.pprof", "goroutine.pprof", "build.json",
		} {
			if !have[want] {
				t.Errorf("bundle %s missing section %s", e.Name(), want)
			}
		}
		if man.Build["seed"] != "17" || man.Build["go_version"] == "" {
			t.Errorf("bundle %s build manifest %v", e.Name(), man.Build)
		}
	}
	if !sawAlarm {
		t.Errorf("no bundle named for its alarm: %v", entries)
	}
	// The spans section of the first bundle holds real flight-recorder
	// content from the traced collapse day.
	buf, err := os.ReadFile(filepath.Join(s.bundleDir, entries[0].Name(), "spans.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte("aggregate_batch")) {
		t.Error("bundle spans.json has no ingest spans")
	}
}

// TestBundleEndpoint: GET /debug/bundle writes and verifies a bundle
// on demand; with bundles disabled it reports failure rather than
// pretending.
func TestBundleEndpoint(t *testing.T) {
	s, _ := traceTestServer(t, 1, 256)
	s.bundleDir = t.TempDir()

	rr := get(t, s, "/debug/bundle")
	if rr.Code != http.StatusOK {
		t.Fatalf("bundle status %d: %s", rr.Code, rr.Body)
	}
	var resp struct {
		Dir      string          `json:"dir"`
		Manifest bundle.Manifest `json:"manifest"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bundle response not JSON: %v\n%s", err, rr.Body)
	}
	if resp.Manifest.Reason != "manual" {
		t.Errorf("manifest reason %q", resp.Manifest.Reason)
	}
	if _, err := bundle.Verify(resp.Dir); err != nil {
		t.Errorf("reported bundle does not verify: %v", err)
	}

	s.bundleDir = ""
	if rr := get(t, s, "/debug/bundle"); rr.Code != http.StatusInternalServerError {
		t.Errorf("disabled bundles returned %d, want 500", rr.Code)
	}
}

// TestTraceEndpointDisabled: with tracing off the flight recorder
// endpoint 404s instead of serving an empty dump.
func TestTraceEndpointDisabled(t *testing.T) {
	s := testServer(t)
	if s.flight != nil {
		t.Skip("shared server has tracing enabled")
	}
	if rr := get(t, s, "/debug/trace"); rr.Code != http.StatusNotFound {
		t.Errorf("trace endpoint with tracing off: %d, want 404", rr.Code)
	}
}
