// Command tipsyd runs TIPSY as an online prediction service, the way
// §4 of the paper deploys it: a simulated WAN produces telemetry
// continuously, models retrain daily on a sliding window, and a JSON
// HTTP API answers the congestion mitigation system's what-if
// queries.
//
//	tipsyd -listen :8080 -seed 1 -train-days 8 -day-every 10s \
//	       -checkpoint /var/lib/tipsy/model.ck -stale-after 72
//
// API:
//
//	GET  /healthz            liveness, model freshness, degraded state
//	GET  /v1/model           model metadata
//	GET  /v1/links           link directory
//	POST /v1/predict         predict ingress links for flows
//
// The -day-every flag compresses simulated time: every interval the
// daemon simulates one more day of traffic and retrains.
//
// Serving is degradation-tolerant: queries walk a fallback ladder
// (trained ensemble, then the coarse Hist_A model, then the
// training-free GeoNearest guesser), so the daemon answers even
// before its first retrain or for flows its models never saw. The
// model is checkpointed atomically after every retrain and on
// shutdown, and recovered on restart, so a crash never costs more
// than the current training interval. /healthz reports "degraded"
// (with HTTP 503) while no trained ensemble is serving or the model
// is stale.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/monitor"
	"tipsy/internal/netsim"
	"tipsy/internal/obsv"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// fallbackCounters is the JSON snapshot of the degraded-mode ladder
// counters /healthz reports; the live counts are registry metrics.
type fallbackCounters struct {
	Ensemble   uint64 `json:"ensemble"`
	Historical uint64 `json:"historical"`
	Geo        uint64 `json:"geo"`
	None       uint64 `json:"none"`
}

// serverMetrics are tipsyd's registry-backed metrics: one counter per
// fallback-ladder rung and one latency histogram per rung attempt.
// Prediction-path stage timings (feature-encode → predict) are
// published per request through an obsv.Trace.
type serverMetrics struct {
	ensemble, historical, geo, none       *obsv.Counter
	rungEnsemble, rungHistorical, rungGeo *obsv.Histogram
	requests                              *obsv.Counter
}

func newServerMetrics(reg *obsv.Registry) serverMetrics {
	return serverMetrics{
		ensemble:       reg.Counter("tipsyd_fallback_ensemble_total"),
		historical:     reg.Counter("tipsyd_fallback_historical_total"),
		geo:            reg.Counter("tipsyd_fallback_geo_total"),
		none:           reg.Counter("tipsyd_fallback_none_total"),
		rungEnsemble:   reg.Histogram("tipsyd_rung_ensemble_ns"),
		rungHistorical: reg.Histogram("tipsyd_rung_historical_ns"),
		rungGeo:        reg.Histogram("tipsyd_rung_geo_ns"),
		requests:       reg.Counter("tipsyd_predict_requests_total"),
	}
}

type server struct {
	sim       *netsim.Sim
	metros    *geo.DB
	trainDays int

	// reg is the daemon-wide metrics registry: the pipeline counters,
	// the fallback ladder, and the prediction-path trace histograms
	// all land here, and /metrics exports it.
	reg *obsv.Registry
	met serverMetrics
	// pprofEnabled mounts net/http/pprof under /debug/pprof/.
	pprofEnabled bool

	// mon joins served predictions against later telemetry and keeps
	// the sliding quality windows behind /debug/quality.
	mon *monitor.Monitor
	// retrainEvery retrains every N simulated days; a firing drift or
	// post-withdrawal alarm forces a retrain sooner.
	retrainEvery int

	// Per-component structured loggers, all derived from the process
	// default handler (-log-level / -log-json).
	logMain, logTrain, logHTTP, logCkpt *slog.Logger

	// checkpointPath, when set, is where retrains atomically persist
	// the trained models and where a restart recovers them from.
	checkpointPath string
	// staleAfter marks the model stale once it is this many simulated
	// hours behind the telemetry. 0 disables the staleness check.
	staleAfter wan.Hour

	mu        sync.RWMutex
	model     core.Predictor   // rung 1: the trained ensemble
	histA     *core.Historical // rung 2: coarse source-AS model
	geoFall   *core.GeoNearest // rung 3: training-free geographic guess
	hAP, hAL  *core.Historical // retained for checkpointing
	records   []features.Record
	simulated wan.Hour
	trainedAt wan.Hour
	tuples    int
	recovered bool // serving models recovered from a checkpoint
}

func main() {
	var (
		listen       = flag.String("listen", ":8080", "HTTP listen address")
		seed         = flag.Int64("seed", 1, "simulation seed")
		trainDays    = flag.Int("train-days", 8, "sliding training window (days)")
		dayEvery     = flag.Duration("day-every", 10*time.Second, "wall-clock time per simulated day")
		retrainEvery = flag.Int("retrain-every", 1, "retrain every N simulated days (drift alarms retrain sooner)")
		checkpoint   = flag.String("checkpoint", "", "path for atomic model checkpoints (empty disables)")
		staleAfter   = flag.Int("stale-after", 72, "simulated hours before the model counts as stale (0 disables)")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	slog.SetDefault(newLogger(os.Stderr, *logLevel, *logJSON))

	s := newServer(*seed, *trainDays)
	s.checkpointPath = *checkpoint
	s.staleAfter = wan.Hour(*staleAfter)
	s.pprofEnabled = *pprofFlag
	if *retrainEvery > 0 {
		s.retrainEvery = *retrainEvery
	}

	if s.checkpointPath != "" {
		switch err := s.recoverCheckpoint(); {
		case err == nil:
			s.logCkpt.Info("recovered checkpoint",
				"path", s.checkpointPath, "trained_at_hour", s.trainedAt)
		case os.IsNotExist(err):
			s.logCkpt.Info("no checkpoint; starting cold", "path", s.checkpointPath)
		default:
			s.logCkpt.Warn("checkpoint unusable; starting cold",
				"path", s.checkpointPath, "err", err)
		}
	}

	if s.recovered {
		// The recovered models serve immediately; the retrain loop
		// refills the sliding window as simulated days pass.
		s.logMain.Info("serving from recovered checkpoint; skipping bootstrap")
	} else {
		s.logMain.Info("bootstrapping", "sim_days", *trainDays)
		s.advanceDays(*trainDays)
		s.retrain()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	s.logMain.Info("tipsyd listening",
		"addr", *listen, "links", s.sim.NumLinks(), "day_every", *dayEvery)
	if err := run(ctx, s, *listen, *dayEvery); err != nil {
		s.logMain.Error("tipsyd failed", "err", err)
		os.Exit(1)
	}
	s.logMain.Info("tipsyd shut down cleanly")
}

// newLogger builds the process-wide slog handler from the -log-level
// and -log-json flags. An unknown level falls back to info.
func newLogger(w *os.File, level string, jsonOut bool) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// run serves the API and the retrain loop until the HTTP server fails
// or ctx is cancelled (the signal-driven shutdown path). On shutdown
// it stops the retrain loop, drains in-flight HTTP requests, and
// writes a final checkpoint so the trained model survives the
// restart.
func run(ctx context.Context, s *server, listen string, dayEvery time.Duration) error {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(dayEvery)
		defer ticker.Stop()
		days := 0 // simulated days since the last retrain
		for {
			select {
			case <-ticker.C:
				s.advanceDays(1)
				days++
				// Sustained drift or a post-withdrawal collapse pulls
				// the retrain forward: a stale model is the one thing a
				// retrain is guaranteed to fix.
				forced := s.mon.AlarmFiring(monitor.AlarmDrift) ||
					s.mon.AlarmFiring(monitor.AlarmPostWithdrawal)
				if days < s.retrainEvery && !forced {
					continue
				}
				if forced && days < s.retrainEvery {
					s.logTrain.Warn("quality alarm forcing early retrain",
						"days_since_retrain", days, "retrain_every", s.retrainEvery)
				}
				s.retrain()
				days = 0
			case <-stop:
				return
			}
		}
	}()

	srv := &http.Server{Addr: listen, Handler: s.mux()}
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()

	var err error
	select {
	case err = <-errCh:
		// The listener died on its own; nothing to drain.
	case <-ctx.Done():
		s.logMain.Info("shutdown signal received; draining")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = srv.Shutdown(sctx)
		cancel()
		<-errCh // ListenAndServe has returned ErrServerClosed
	}
	close(stop)
	<-done

	if cerr := s.saveCheckpoint(); cerr != nil {
		s.logCkpt.Error("final checkpoint failed", "err", cerr)
		if err == nil {
			err = cerr
		}
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

// newServer constructs the simulated WAN and an empty (untrained)
// server around it. Until the first retrain, queries are answered by
// the GeoNearest fallback and /healthz reports degraded.
func newServer(seed int64, trainDays int) *server {
	return newServerCfg(seed, trainDays, monitor.DefaultConfig())
}

// newServerCfg is newServer with an explicit monitor configuration,
// so tests can tighten the quality-window geometry.
func newServerCfg(seed int64, trainDays int, mcfg monitor.Config) *server {
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed+10), g, metros)
	cfg := netsim.DefaultConfig(seed + 20)
	cfg.HorizonHours = wan.Hour(400 * 24)
	cfg.OutagesPerLinkYear = 10
	sim := netsim.New(cfg, g, metros, w)

	reg := obsv.NewRegistry()
	if mcfg.LinkMeta == nil {
		mcfg.LinkMeta = linkMeta(sim)
	}
	logger := slog.Default()
	return &server{
		sim:          sim,
		metros:       metros,
		trainDays:    trainDays,
		reg:          reg,
		met:          newServerMetrics(reg),
		mon:          monitor.New(mcfg, reg),
		retrainEvery: 1,
		logMain:      logger.With("component", "main"),
		logTrain:     logger.With("component", "train"),
		logHTTP:      logger.With("component", "http"),
		logCkpt:      logger.With("component", "checkpoint"),
		geoFall:      core.NewGeoNearest(sim, metros),
	}
}

// linkMeta resolves a link to its metro and peer-AS kind — the
// monitor's quality-slice dimensions.
func linkMeta(sim *netsim.Sim) func(wan.LinkID) (geo.MetroID, string) {
	return func(id wan.LinkID) (geo.MetroID, string) {
		l, ok := sim.Link(id)
		if !ok {
			return 0, "unknown"
		}
		kind := "unknown"
		if as, ok := sim.Graph().AS(l.PeerAS); ok {
			kind = as.Kind.String()
		}
		return l.Metro, kind
	}
}

// buildServer constructs the simulated WAN, bootstraps trainDays of
// telemetry, and trains the first serving model.
func buildServer(seed int64, trainDays int) *server {
	s := newServer(seed, trainDays)
	s.advanceDays(trainDays)
	s.retrain()
	return s
}

// mux routes the API. /metrics always serves the registry's text
// exposition; the pprof handlers are mounted only when -pprof is set,
// keeping the profiling surface off production listeners by default.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/links", s.handleLinks)
	mux.HandleFunc("GET /v1/sample", s.handleSample)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /debug/quality", s.handleQuality)
	if s.pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// advanceDays simulates n more days of traffic into the record store.
// The drained records double as ground truth: the aggregator streams
// them to the monitor, which joins them against outstanding
// predictions before the simulated clock advances past their hours.
func (s *server) advanceDays(n int) {
	s.mu.Lock()
	from := s.simulated
	s.mu.Unlock()
	to := from + wan.Hour(n*24)
	agg := pipeline.NewAggregatorOn(s.reg, s.sim.GeoIP(), s.sim.DstMetadata)
	agg.SetTruthSink(s.mon)
	s.sim.Run(netsim.RunOptions{From: from, To: to, Sink: agg})
	recs := agg.Records()
	s.mon.AdvanceTo(to)
	s.mu.Lock()
	s.records = append(s.records, recs...)
	s.simulated = to
	// Trim the store to what retraining needs.
	cutoff := to - wan.Hour(s.trainDays*24)
	s.records = dataset.Window(s.records, cutoff, to)
	s.mu.Unlock()
}

// retrain rebuilds the serving ensemble from the sliding window —
// the paper's daily retraining cadence — and checkpoints it.
func (s *server) retrain() {
	s.mu.RLock()
	recs := s.records
	now := s.simulated
	s.mu.RUnlock()
	if len(recs) == 0 {
		return
	}
	hA := core.TrainHistorical(features.SetA, recs, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, recs, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, recs, core.DefaultHistOpts())
	geoModel := core.NewGeoCompletion(hAL, s.sim, s.metros)
	model := core.NewEnsemble(hAP, geoModel, hA)
	s.mu.Lock()
	s.model = model
	s.histA = hA
	s.hAP, s.hAL = hAP, hAL
	s.trainedAt = now
	s.tuples = hAP.NumTuples() + hAL.NumTuples() + hA.NumTuples()
	s.recovered = false
	tuples := s.tuples
	s.mu.Unlock()
	// The freshly trained model defines the new quality baseline (and
	// disarms any post-withdrawal watch); shadow predictions from it
	// are what next day's telemetry will be joined against.
	s.mon.FreezeBaseline(now)
	s.shadowPredict(now, recs)
	s.logTrain.Info("retrained",
		"hour", now, "records", len(recs), "tuples", tuples)
	if err := s.saveCheckpoint(); err != nil {
		s.logCkpt.Error("checkpoint failed", "err", err)
	}
}

// shadowSampleCap bounds how many distinct flows each retrain grades.
const shadowSampleCap = 256

// shadowPredict records a deterministic sample of the training
// window's flows as served predictions, so the monitor has joinable
// predictions even when no external client is querying. The sample
// keeps the first sighting of each distinct flow in record order, so
// same-seed runs grade the same flows.
func (s *server) shadowPredict(now wan.Hour, recs []features.Record) {
	seen := make(map[features.FlowFeatures]bool, shadowSampleCap)
	for _, rec := range recs {
		if seen[rec.Flow] {
			continue
		}
		seen[rec.Flow] = true
		preds, rung := s.ladder(core.Query{Flow: rec.Flow, K: 3}, false)
		s.mon.RecordPrediction(now, rec.Flow, rung, preds)
		if len(seen) >= shadowSampleCap {
			return
		}
	}
}

// saveCheckpoint atomically persists the trained models. A no-op when
// checkpointing is disabled or nothing is trained yet.
func (s *server) saveCheckpoint() error {
	s.mu.RLock()
	path := s.checkpointPath
	ck := core.Checkpoint{TrainedAt: s.trainedAt}
	if s.hAP != nil {
		ck.Models = []*core.Historical{s.hAP, s.hAL, s.histA}
	}
	s.mu.RUnlock()
	if path == "" || len(ck.Models) == 0 {
		return nil
	}
	return ck.SaveFile(path)
}

// recoverCheckpoint restores the serving models from the checkpoint
// file, rebuilding the ensemble around them, and resumes the
// simulation clock at the checkpointed hour. The recovered model
// serves immediately; the next retrain replaces it.
func (s *server) recoverCheckpoint() error {
	ck, err := core.LoadCheckpointFile(s.checkpointPath)
	if err != nil {
		return err
	}
	var hA, hAP, hAL *core.Historical
	for _, m := range ck.Models {
		switch m.Set() {
		case features.SetA:
			hA = m
		case features.SetAP:
			hAP = m
		case features.SetAL:
			hAL = m
		}
	}
	if hA == nil || hAP == nil || hAL == nil {
		return fmt.Errorf("checkpoint incomplete: %d models", len(ck.Models))
	}
	model := core.NewEnsemble(hAP, core.NewGeoCompletion(hAL, s.sim, s.metros), hA)
	s.mu.Lock()
	s.model = model
	s.histA = hA
	s.hAP, s.hAL = hAP, hAL
	s.trainedAt = ck.TrainedAt
	if s.simulated < ck.TrainedAt {
		s.simulated = ck.TrainedAt
	}
	s.tuples = hAP.NumTuples() + hAL.NumTuples() + hA.NumTuples()
	s.recovered = true
	s.mu.Unlock()
	return nil
}

// predict walks the degraded-mode ladder: the trained ensemble, then
// the coarse Hist_A model, then the training-free geographic guess.
// It reports which rung answered; the per-rung counters feed /healthz
// and /metrics, and each attempted rung's latency lands in its
// tipsyd_rung_*_ns histogram.
func (s *server) predict(q core.Query) ([]core.Prediction, string) {
	return s.ladder(q, true)
}

// ladder is the fallback walk itself. count=false skips the serving
// counters and latency histograms: monitor shadow samples grade model
// quality and must not skew the client-facing serving metrics.
func (s *server) ladder(q core.Query, count bool) ([]core.Prediction, string) {
	s.mu.RLock()
	model, histA, geoFall := s.model, s.histA, s.geoFall
	s.mu.RUnlock()
	if model != nil {
		start := time.Now()
		preds := model.Predict(q)
		if count {
			s.met.rungEnsemble.Observe(time.Since(start).Nanoseconds())
		}
		if len(preds) > 0 {
			if count {
				s.met.ensemble.Inc()
			}
			return preds, "ensemble"
		}
	}
	if histA != nil {
		start := time.Now()
		preds := histA.Predict(q)
		if count {
			s.met.rungHistorical.Observe(time.Since(start).Nanoseconds())
		}
		if len(preds) > 0 {
			if count {
				s.met.historical.Inc()
			}
			return preds, "historical"
		}
	}
	if geoFall != nil {
		start := time.Now()
		preds := geoFall.Predict(q)
		if count {
			s.met.rungGeo.Observe(time.Since(start).Nanoseconds())
		}
		if len(preds) > 0 {
			if count {
				s.met.geo.Inc()
			}
			return preds, "geo"
		}
	}
	if count {
		s.met.none.Inc()
	}
	return nil, "none"
}

// fallbackSnapshot reads the ladder counters for /healthz.
func (s *server) fallbackSnapshot() fallbackCounters {
	return fallbackCounters{
		Ensemble:   s.met.ensemble.Value(),
		Historical: s.met.historical.Value(),
		Geo:        s.met.geo.Value(),
		None:       s.met.none.Value(),
	}
}

// degradedLocked reports whether serving is degraded (no trained
// ensemble, or a model staler than the configured bound) and why.
// Callers hold s.mu.
func (s *server) degradedLocked() (bool, string) {
	if s.model == nil {
		return true, "no trained model; serving from fallback"
	}
	if s.staleAfter > 0 && s.simulated-s.trainedAt > s.staleAfter {
		return true, fmt.Sprintf("model stale: trained at hour %d, telemetry at hour %d", s.trainedAt, s.simulated)
	}
	return false, ""
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	degraded, reason := s.degradedLocked()
	body := map[string]any{
		"status":           "ok",
		"simulated_hour":   s.simulated,
		"model_trained_at": s.trainedAt,
		"model_age_hours":  s.simulated - s.trainedAt,
		"model_ready":      s.model != nil,
		"recovered":        s.recovered,
		"fallbacks":        s.fallbackSnapshot(),
	}
	s.mu.RUnlock()
	// The monitor's verdict annotates health: a model that is fresh
	// but predicting badly is degraded too.
	qDegraded, qReason := s.mon.Degraded()
	body["quality_degraded"] = qDegraded
	if qDegraded {
		body["quality_reason"] = qReason
		if !degraded {
			degraded, reason = true, "prediction quality: "+qReason
		}
	}
	if degraded {
		body["status"] = "degraded"
		body["reason"] = reason
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		if err := json.NewEncoder(w).Encode(body); err != nil {
			s.logHTTP.Error("write response", "err", err)
		}
		return
	}
	s.writeJSON(w, body)
}

// handleQuality serves the monitor's full quality report: windowed
// accuracy, slices, drift vs. baseline, and alarm states.
func (s *server) handleQuality(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.mon.Quality())
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.model == nil {
		http.Error(w, "model not ready", http.StatusServiceUnavailable)
		return
	}
	s.writeJSON(w, map[string]any{
		"name":       s.model.Name(),
		"tuples":     s.tuples,
		"trained_at": s.trainedAt,
		"train_days": s.trainDays,
		"recovered":  s.recovered,
	})
}

func (s *server) handleLinks(w http.ResponseWriter, r *http.Request) {
	type linkJSON struct {
		ID       wan.LinkID `json:"id"`
		Router   string     `json:"router"`
		Metro    uint16     `json:"metro"`
		PeerAS   uint32     `json:"peer_as"`
		Capacity float64    `json:"capacity_bps"`
	}
	var out []linkJSON
	for _, id := range s.sim.Links() {
		l, _ := s.sim.Link(id)
		out = append(out, linkJSON{l.ID, l.Router, uint16(l.Metro), uint32(l.PeerAS), l.Capacity})
	}
	s.writeJSON(w, out)
}

// handleSample returns a few flow tuples present in the training
// window, ready to paste into /v1/predict bodies — handy for demos
// and smoke tests.
func (s *server) handleSample(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	recs := s.records
	s.mu.RUnlock()
	type sample struct {
		SrcAddr string  `json:"src_addr"`
		SrcAS   uint32  `json:"src_as"`
		Region  uint16  `json:"region"`
		Service uint8   `json:"service"`
		Bytes   float64 `json:"bytes"`
	}
	var out []sample
	seen := map[features.FlowFeatures]bool{}
	for _, rec := range recs {
		if seen[rec.Flow] {
			continue
		}
		seen[rec.Flow] = true
		out = append(out, sample{
			SrcAddr: fmt.Sprintf("%d.%d.%d.%d", byte(rec.Flow.Prefix>>24),
				byte(rec.Flow.Prefix>>16), byte(rec.Flow.Prefix>>8), 7),
			SrcAS: uint32(rec.Flow.AS), Region: uint16(rec.Flow.Region),
			Service: uint8(rec.Flow.Type), Bytes: rec.Bytes,
		})
		if len(out) >= 5 {
			break
		}
	}
	s.writeJSON(w, out)
}

// predictRequest mirrors how the CMS queries TIPSY (§4): a set of
// flows (tuples and bytes) plus the links about to be withdrawn.
type predictRequest struct {
	Flows []struct {
		SrcAddr string  `json:"src_addr"`
		SrcAS   uint32  `json:"src_as"`
		Region  uint16  `json:"region"`
		Service uint8   `json:"service"`
		Bytes   float64 `json:"bytes"`
	} `json:"flows"`
	ExcludeLinks []wan.LinkID `json:"exclude_links"`
	K            int          `json:"k"`
}

type predictResponse struct {
	Results []struct {
		Flow int `json:"flow"`
		// Model names the ladder rung that answered this flow:
		// "ensemble", "historical", "geo", or "none".
		Model string `json:"model"`
		Links []struct {
			Link  wan.LinkID `json:"link"`
			Frac  float64    `json:"frac"`
			Bytes float64    `json:"bytes"`
		} `json:"links"`
	} `json:"results"`
	// Shifted aggregates predicted bytes per target link across all
	// queried flows — the number the CMS compares against capacity.
	Shifted map[wan.LinkID]float64 `json:"shifted"`
}

// handlePredict serves the per-request prediction path — the
// latency-sensitive endpoint, so its closure is allocation-budgeted.
//
//tipsy:hotpath
func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	s.met.requests.Inc()
	// Trace the request's stages: feature encoding (address parsing,
	// prefix derivation, Geo-IP joins) vs. prediction (the ensemble
	// and its fallback ladder). Publishing feeds the per-stage latency
	// histograms that /metrics exports.
	tr := obsv.NewTrace()
	excluded := make(map[wan.LinkID]bool, len(req.ExcludeLinks))
	for _, l := range req.ExcludeLinks {
		excluded[l] = true
	}
	flows := make([]features.FlowFeatures, len(req.Flows))
	for i, f := range req.Flows {
		addr, err := parseIPv4(f.SrcAddr)
		if err != nil {
			http.Error(w, fmt.Sprintf("flow %d: %v", i, err), http.StatusBadRequest)
			return
		}
		prefix := bgp.Slash24(addr)
		flows[i] = features.FlowFeatures{
			AS: bgp.ASN(f.SrcAS), Prefix: prefix, Loc: s.sim.GeoIP().Lookup(prefix),
			Region: wan.Region(f.Region), Type: wan.ServiceType(f.Service),
		}
	}
	tr.Mark("feature_encode")
	s.mu.RLock()
	now := s.simulated
	s.mu.RUnlock()
	resp := predictResponse{Shifted: make(map[wan.LinkID]float64)}
	for i, f := range req.Flows {
		preds, rung := s.predict(core.Query{
			Flow: flows[i], K: req.K,
			Exclude: func(l wan.LinkID) bool { return excluded[l] },
		})
		// Feed the quality monitor — but only unconstrained queries:
		// what-if queries that exclude links are answered against a
		// counterfactual topology and would skew the joined accuracy.
		if len(req.ExcludeLinks) == 0 {
			s.mon.RecordPrediction(now, flows[i], rung, preds)
		}
		var result struct {
			Flow  int    `json:"flow"`
			Model string `json:"model"`
			Links []struct {
				Link  wan.LinkID `json:"link"`
				Frac  float64    `json:"frac"`
				Bytes float64    `json:"bytes"`
			} `json:"links"`
		}
		result.Flow = i
		result.Model = rung
		for _, p := range preds {
			result.Links = append(result.Links, struct {
				Link  wan.LinkID `json:"link"`
				Frac  float64    `json:"frac"`
				Bytes float64    `json:"bytes"`
			}{p.Link, p.Frac, p.Frac * f.Bytes})
			resp.Shifted[p.Link] += p.Frac * f.Bytes
		}
		resp.Results = append(resp.Results, result)
	}
	tr.Mark("predict")
	tr.Publish(s.reg, "tipsyd_predict")
	s.writeJSON(w, resp)
}

func parseIPv4(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	if a|b|c|d < 0 || a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logHTTP.Error("write response", "err", err)
	}
}
