// Command tipsyd runs TIPSY as an online prediction service, the way
// §4 of the paper deploys it: a simulated WAN produces telemetry
// continuously, models retrain daily on a sliding window, and a JSON
// HTTP API answers the congestion mitigation system's what-if
// queries.
//
//	tipsyd -listen :8080 -seed 1 -train-days 8 -day-every 10s
//
// API:
//
//	GET  /healthz            liveness and model freshness
//	GET  /v1/model           model metadata
//	GET  /v1/links           link directory
//	POST /v1/predict         predict ingress links for flows
//
// The -day-every flag compresses simulated time: every interval the
// daemon simulates one more day of traffic and retrains.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

type server struct {
	sim       *netsim.Sim
	metros    *geo.DB
	trainDays int

	mu        sync.RWMutex
	model     core.Predictor
	hist      *core.Historical // AL component, for size reporting
	records   []features.Record
	simulated wan.Hour
	trainedAt wan.Hour
	tuples    int
}

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		seed      = flag.Int64("seed", 1, "simulation seed")
		trainDays = flag.Int("train-days", 8, "sliding training window (days)")
		dayEvery  = flag.Duration("day-every", 10*time.Second, "wall-clock time per simulated day")
	)
	flag.Parse()

	log.Printf("bootstrapping: simulating %d days of telemetry", *trainDays)
	s := buildServer(*seed, *trainDays)

	// The retrain loop owns a stoppable ticker so tests (and a future
	// graceful-shutdown path) can halt it by closing stop.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(*dayEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.advanceDays(1)
				s.retrain()
			case <-stop:
				return
			}
		}
	}()

	log.Printf("tipsyd listening on %s (%d links, one simulated day per %v)",
		*listen, s.sim.NumLinks(), *dayEvery)
	log.Fatal(http.ListenAndServe(*listen, s.mux()))
}

// buildServer constructs the simulated WAN, bootstraps trainDays of
// telemetry, and trains the first serving model.
func buildServer(seed int64, trainDays int) *server {
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed+10), g, metros)
	cfg := netsim.DefaultConfig(seed + 20)
	cfg.HorizonHours = wan.Hour(400 * 24)
	cfg.OutagesPerLinkYear = 10
	sim := netsim.New(cfg, g, metros, w)

	s := &server{sim: sim, metros: metros, trainDays: trainDays}
	s.advanceDays(trainDays)
	s.retrain()
	return s
}

// mux routes the API.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/links", s.handleLinks)
	mux.HandleFunc("GET /v1/sample", s.handleSample)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	return mux
}

// advanceDays simulates n more days of traffic into the record store.
func (s *server) advanceDays(n int) {
	s.mu.Lock()
	from := s.simulated
	s.mu.Unlock()
	to := from + wan.Hour(n*24)
	agg := pipeline.NewAggregator(s.sim.GeoIP(), s.sim.DstMetadata)
	s.sim.Run(netsim.RunOptions{From: from, To: to, Sink: agg})
	recs := agg.Records()
	s.mu.Lock()
	s.records = append(s.records, recs...)
	s.simulated = to
	// Trim the store to what retraining needs.
	cutoff := to - wan.Hour(s.trainDays*24)
	s.records = dataset.Window(s.records, cutoff, to)
	s.mu.Unlock()
}

// retrain rebuilds the serving ensemble from the sliding window —
// the paper's daily retraining cadence.
func (s *server) retrain() {
	s.mu.RLock()
	recs := s.records
	now := s.simulated
	s.mu.RUnlock()
	if len(recs) == 0 {
		return
	}
	hA := core.TrainHistorical(features.SetA, recs, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, recs, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, recs, core.DefaultHistOpts())
	geoModel := core.NewGeoCompletion(hAL, s.sim, s.metros)
	model := core.NewEnsemble(hAP, geoModel, hA)
	s.mu.Lock()
	s.model = model
	s.hist = hAP
	s.trainedAt = now
	s.tuples = hAP.NumTuples() + hAL.NumTuples() + hA.NumTuples()
	s.mu.Unlock()
	log.Printf("retrained at simulated hour %d on %d records (%d tuples)", now, len(recs), s.tuples)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, map[string]any{
		"status":           "ok",
		"simulated_hour":   s.simulated,
		"model_trained_at": s.trainedAt,
		"model_ready":      s.model != nil,
	})
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.model == nil {
		http.Error(w, "model not ready", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]any{
		"name":       s.model.Name(),
		"tuples":     s.tuples,
		"trained_at": s.trainedAt,
		"train_days": s.trainDays,
	})
}

func (s *server) handleLinks(w http.ResponseWriter, r *http.Request) {
	type linkJSON struct {
		ID       wan.LinkID `json:"id"`
		Router   string     `json:"router"`
		Metro    uint16     `json:"metro"`
		PeerAS   uint32     `json:"peer_as"`
		Capacity float64    `json:"capacity_bps"`
	}
	var out []linkJSON
	for _, id := range s.sim.Links() {
		l, _ := s.sim.Link(id)
		out = append(out, linkJSON{l.ID, l.Router, uint16(l.Metro), uint32(l.PeerAS), l.Capacity})
	}
	writeJSON(w, out)
}

// handleSample returns a few flow tuples present in the training
// window, ready to paste into /v1/predict bodies — handy for demos
// and smoke tests.
func (s *server) handleSample(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	recs := s.records
	s.mu.RUnlock()
	type sample struct {
		SrcAddr string  `json:"src_addr"`
		SrcAS   uint32  `json:"src_as"`
		Region  uint16  `json:"region"`
		Service uint8   `json:"service"`
		Bytes   float64 `json:"bytes"`
	}
	var out []sample
	seen := map[features.FlowFeatures]bool{}
	for _, rec := range recs {
		if seen[rec.Flow] {
			continue
		}
		seen[rec.Flow] = true
		out = append(out, sample{
			SrcAddr: fmt.Sprintf("%d.%d.%d.%d", byte(rec.Flow.Prefix>>24),
				byte(rec.Flow.Prefix>>16), byte(rec.Flow.Prefix>>8), 7),
			SrcAS: uint32(rec.Flow.AS), Region: uint16(rec.Flow.Region),
			Service: uint8(rec.Flow.Type), Bytes: rec.Bytes,
		})
		if len(out) >= 5 {
			break
		}
	}
	writeJSON(w, out)
}

// predictRequest mirrors how the CMS queries TIPSY (§4): a set of
// flows (tuples and bytes) plus the links about to be withdrawn.
type predictRequest struct {
	Flows []struct {
		SrcAddr string  `json:"src_addr"`
		SrcAS   uint32  `json:"src_as"`
		Region  uint16  `json:"region"`
		Service uint8   `json:"service"`
		Bytes   float64 `json:"bytes"`
	} `json:"flows"`
	ExcludeLinks []wan.LinkID `json:"exclude_links"`
	K            int          `json:"k"`
}

type predictResponse struct {
	Results []struct {
		Flow  int `json:"flow"`
		Links []struct {
			Link  wan.LinkID `json:"link"`
			Frac  float64    `json:"frac"`
			Bytes float64    `json:"bytes"`
		} `json:"links"`
	} `json:"results"`
	// Shifted aggregates predicted bytes per target link across all
	// queried flows — the number the CMS compares against capacity.
	Shifted map[wan.LinkID]float64 `json:"shifted"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	s.mu.RLock()
	model := s.model
	s.mu.RUnlock()
	if model == nil {
		http.Error(w, "model not ready", http.StatusServiceUnavailable)
		return
	}
	excluded := make(map[wan.LinkID]bool, len(req.ExcludeLinks))
	for _, l := range req.ExcludeLinks {
		excluded[l] = true
	}
	resp := predictResponse{Shifted: make(map[wan.LinkID]float64)}
	for i, f := range req.Flows {
		addr, err := parseIPv4(f.SrcAddr)
		if err != nil {
			http.Error(w, fmt.Sprintf("flow %d: %v", i, err), http.StatusBadRequest)
			return
		}
		prefix := bgp.Slash24(addr)
		flow := features.FlowFeatures{
			AS: bgp.ASN(f.SrcAS), Prefix: prefix, Loc: s.sim.GeoIP().Lookup(prefix),
			Region: wan.Region(f.Region), Type: wan.ServiceType(f.Service),
		}
		preds := model.Predict(core.Query{
			Flow: flow, K: req.K,
			Exclude: func(l wan.LinkID) bool { return excluded[l] },
		})
		var result struct {
			Flow  int `json:"flow"`
			Links []struct {
				Link  wan.LinkID `json:"link"`
				Frac  float64    `json:"frac"`
				Bytes float64    `json:"bytes"`
			} `json:"links"`
		}
		result.Flow = i
		for _, p := range preds {
			result.Links = append(result.Links, struct {
				Link  wan.LinkID `json:"link"`
				Frac  float64    `json:"frac"`
				Bytes float64    `json:"bytes"`
			}{p.Link, p.Frac, p.Frac * f.Bytes})
			resp.Shifted[p.Link] += p.Frac * f.Bytes
		}
		resp.Results = append(resp.Results, result)
	}
	writeJSON(w, resp)
}

func parseIPv4(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	if a|b|c|d < 0 || a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}
