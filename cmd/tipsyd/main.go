// Command tipsyd runs TIPSY as an online prediction service, the way
// §4 of the paper deploys it: a simulated WAN produces telemetry
// continuously, models retrain daily on a sliding window, and a JSON
// HTTP API answers the congestion mitigation system's what-if
// queries.
//
//	tipsyd -listen :8080 -seed 1 -train-days 8 -day-every 10s \
//	       -checkpoint /var/lib/tipsy/model.ck -stale-after 72
//
// API:
//
//	GET  /healthz            liveness, model freshness, degraded state
//	GET  /v1/model           model metadata
//	GET  /v1/links           link directory
//	POST /v1/predict         predict ingress links for flows
//	GET  /debug/quality      online quality report and alarms
//	GET  /debug/trace        flight-recorder span dump (JSON or Chrome trace)
//	GET  /debug/bundle       write + verify a diagnostic bundle on demand
//
// Every handler participates in span tracing: an inbound traceparent
// header parents the request's spans (and is echoed on the response),
// and the flight recorder keeps the most recent spans for
// /debug/trace and diagnostic bundles. When a quality alarm fires the
// daemon writes a bundle automatically (see -bundle-dir).
//
// The -day-every flag compresses simulated time: every interval the
// daemon simulates one more day of traffic and retrains.
//
// Serving is degradation-tolerant: queries walk a fallback ladder
// (trained ensemble, then the coarse Hist_A model, then the
// training-free GeoNearest guesser), so the daemon answers even
// before its first retrain or for flows its models never saw. The
// model is checkpointed atomically after every retrain and on
// shutdown, and recovered on restart, so a crash never costs more
// than the current training interval. /healthz reports "degraded"
// (with HTTP 503) while no trained ensemble is serving or the model
// is stale.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	rpprof "runtime/pprof"
	"strconv"
	"sync"
	"syscall"
	"time"

	"tipsy/internal/bgp"
	"tipsy/internal/bundle"
	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/monitor"
	"tipsy/internal/netsim"
	"tipsy/internal/obsv"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// fallbackCounters is the JSON snapshot of the degraded-mode ladder
// counters /healthz reports; the live counts are registry metrics.
type fallbackCounters struct {
	Ensemble   uint64 `json:"ensemble"`
	Historical uint64 `json:"historical"`
	Geo        uint64 `json:"geo"`
	None       uint64 `json:"none"`
}

// serverMetrics are tipsyd's registry-backed metrics: one counter per
// fallback-ladder rung and one latency histogram per rung attempt.
// Prediction-path stage timings (feature-encode → predict) are
// published per request through an obsv.Trace.
type serverMetrics struct {
	ensemble, historical, geo, none       *obsv.Counter
	rungEnsemble, rungHistorical, rungGeo *obsv.Histogram
	requests                              *obsv.Counter
	bundles                               *obsv.Counter
}

func newServerMetrics(reg *obsv.Registry) serverMetrics {
	return serverMetrics{
		ensemble:       reg.Counter("tipsyd_fallback_ensemble_total"),
		historical:     reg.Counter("tipsyd_fallback_historical_total"),
		geo:            reg.Counter("tipsyd_fallback_geo_total"),
		none:           reg.Counter("tipsyd_fallback_none_total"),
		rungEnsemble:   reg.Histogram("tipsyd_rung_ensemble_ns"),
		rungHistorical: reg.Histogram("tipsyd_rung_historical_ns"),
		rungGeo:        reg.Histogram("tipsyd_rung_geo_ns"),
		requests:       reg.Counter("tipsyd_predict_requests_total"),
		bundles:        reg.Counter("tipsyd_bundles_written_total"),
	}
}

type server struct {
	sim       *netsim.Sim
	metros    *geo.DB
	trainDays int

	// reg is the daemon-wide metrics registry: the pipeline counters,
	// the fallback ladder, and the prediction-path trace histograms
	// all land here, and /metrics exports it.
	reg *obsv.Registry
	met serverMetrics
	// pprofEnabled mounts net/http/pprof under /debug/pprof/.
	pprofEnabled bool

	// mon joins served predictions against later telemetry and keeps
	// the sliding quality windows behind /debug/quality.
	mon *monitor.Monitor
	// retrainEvery retrains every N simulated days; a firing drift or
	// post-withdrawal alarm forces a retrain sooner.
	retrainEvery int

	// Per-component structured loggers, all derived from the process
	// default handler (-log-level / -log-json).
	logMain, logTrain, logHTTP, logCkpt *slog.Logger

	// checkpointPath, when set, is where retrains atomically persist
	// the trained models and where a restart recovers them from.
	checkpointPath string
	// staleAfter marks the model stale once it is this many simulated
	// hours behind the telemetry. 0 disables the staleness check.
	staleAfter wan.Hour

	// clock is the nanosecond wall clock behind every span timestamp
	// and the per-rung ladder timings; tests swap it for a counter so
	// span dumps golden. It must be safe for concurrent use.
	clock func() int64
	// tracer + flight are the span-tracing subsystem: spans land in
	// the flight-recorder ring, which /debug/trace and diagnostic
	// bundles dump. A nil tracer disables tracing entirely.
	tracer *obsv.Tracer
	flight *obsv.Recorder
	// rtb samples runtime/metrics (GC pauses, heap, goroutines) into
	// the registry on each /metrics scrape and bundle write.
	rtb *obsv.RuntimeBridge
	// logRing keeps the recent slog tail for diagnostic bundles; main
	// tees the process logger into it.
	logRing *obsv.LogRing
	// bundleDir is where alarm-triggered and on-demand diagnostic
	// bundles land; empty disables bundle writing.
	bundleDir string
	seed      int64
	logBundle *slog.Logger

	// bundleMu serializes bundle writes; bundleSeq makes names unique
	// even under a frozen fake clock.
	bundleMu sync.Mutex
	//tipsy:guardedby bundleMu
	bundleSeq uint64

	mu sync.RWMutex
	//tipsy:guardedby mu
	model core.Predictor // rung 1: the trained ensemble
	//tipsy:guardedby mu
	histA *core.Historical // rung 2: coarse source-AS model
	//tipsy:guardedby mu
	geoFall *core.GeoNearest // rung 3: training-free geographic guess
	//tipsy:guardedby mu
	hAP *core.Historical // retained for checkpointing
	//tipsy:guardedby mu
	hAL *core.Historical
	//tipsy:guardedby mu
	records []features.Record
	//tipsy:guardedby mu
	simulated wan.Hour
	//tipsy:guardedby mu
	trainedAt wan.Hour
	//tipsy:guardedby mu
	tuples int
	//tipsy:guardedby mu
	recovered bool // serving models recovered from a checkpoint
}

// defaultTraceSpans sizes the flight-recorder ring; logRingBytes
// sizes the slog tail kept for diagnostic bundles.
const (
	defaultTraceSpans = 4096
	logRingBytes      = 64 << 10
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "HTTP listen address")
		seed         = flag.Int64("seed", 1, "simulation seed")
		trainDays    = flag.Int("train-days", 8, "sliding training window (days)")
		dayEvery     = flag.Duration("day-every", 10*time.Second, "wall-clock time per simulated day")
		retrainEvery = flag.Int("retrain-every", 1, "retrain every N simulated days (drift alarms retrain sooner)")
		checkpoint   = flag.String("checkpoint", "", "path for atomic model checkpoints (empty disables)")
		staleAfter   = flag.Int("stale-after", 72, "simulated hours before the model counts as stale (0 disables)")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		traceSample  = flag.Uint64("trace-sample", 1, "record every Nth trace (1 = all, 0 disables tracing)")
		traceSpans   = flag.Int("trace-spans", defaultTraceSpans, "flight-recorder capacity in spans")
		bundleDir    = flag.String("bundle-dir", filepath.Join(os.TempDir(), "tipsy-bundles"),
			"directory for diagnostic bundles (empty disables)")
	)
	flag.Parse()

	// Tee the process logger into a ring so diagnostic bundles carry
	// the log lines leading up to an incident.
	ring := obsv.NewLogRing(logRingBytes)
	slog.SetDefault(newLogger(io.MultiWriter(os.Stderr, ring), *logLevel, *logJSON))

	s := newServer(*seed, *trainDays)
	s.logRing = ring
	s.checkpointPath = *checkpoint
	s.staleAfter = wan.Hour(*staleAfter)
	s.pprofEnabled = *pprofFlag
	s.bundleDir = *bundleDir
	s.initTrace(*traceSample, *traceSpans)
	if *retrainEvery > 0 {
		s.retrainEvery = *retrainEvery
	}

	if s.checkpointPath != "" {
		switch err := s.recoverCheckpoint(); {
		case err == nil:
			s.mu.RLock()
			trainedAt := s.trainedAt
			s.mu.RUnlock()
			s.logCkpt.Info("recovered checkpoint",
				"path", s.checkpointPath, "trained_at_hour", trainedAt)
		case os.IsNotExist(err):
			s.logCkpt.Info("no checkpoint; starting cold", "path", s.checkpointPath)
		default:
			s.logCkpt.Warn("checkpoint unusable; starting cold",
				"path", s.checkpointPath, "err", err)
		}
	}

	s.mu.RLock()
	recovered := s.recovered
	s.mu.RUnlock()
	if recovered {
		// The recovered models serve immediately; the retrain loop
		// refills the sliding window as simulated days pass.
		s.logMain.Info("serving from recovered checkpoint; skipping bootstrap")
	} else {
		s.logMain.Info("bootstrapping", "sim_days", *trainDays)
		root := s.tracer.StartRoot("cycle")
		s.advanceDaysTraced(*trainDays, root)
		s.retrainTraced(root)
		root.End()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	s.logMain.Info("tipsyd listening",
		"addr", *listen, "links", s.sim.NumLinks(), "day_every", *dayEvery)
	if err := run(ctx, s, *listen, *dayEvery); err != nil {
		s.logMain.Error("tipsyd failed", "err", err)
		os.Exit(1)
	}
	s.logMain.Info("tipsyd shut down cleanly")
}

// newLogger builds the process-wide slog handler from the -log-level
// and -log-json flags. An unknown level falls back to info.
func newLogger(w io.Writer, level string, jsonOut bool) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// run serves the API and the retrain loop until the HTTP server fails
// or ctx is cancelled (the signal-driven shutdown path). On shutdown
// it stops the retrain loop, drains in-flight HTTP requests, and
// writes a final checkpoint so the trained model survives the
// restart.
func run(ctx context.Context, s *server, listen string, dayEvery time.Duration) error {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(dayEvery)
		defer ticker.Stop()
		days := 0 // simulated days since the last retrain
		for {
			select {
			case <-ticker.C:
				// Each tick is one ingest/retrain cycle under a root
				// span, so the flight recorder links the day's ingest,
				// drain, truth join, and retrain together.
				root := s.tracer.StartRoot("cycle")
				s.advanceDaysTraced(1, root)
				days++
				// Sustained drift or a post-withdrawal collapse pulls
				// the retrain forward: a stale model is the one thing a
				// retrain is guaranteed to fix.
				forced := s.mon.AlarmFiring(monitor.AlarmDrift) ||
					s.mon.AlarmFiring(monitor.AlarmPostWithdrawal)
				if days < s.retrainEvery && !forced {
					root.End()
					continue
				}
				if forced && days < s.retrainEvery {
					s.logTrain.Warn("quality alarm forcing early retrain",
						"days_since_retrain", days, "retrain_every", s.retrainEvery)
					root.Event("forced_retrain")
				}
				s.retrainTraced(root)
				root.End()
				days = 0
			case <-stop:
				return
			}
		}
	}()

	srv := &http.Server{Addr: listen, Handler: s.handler()}
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()

	var err error
	select {
	case err = <-errCh:
		// The listener died on its own; nothing to drain.
	case <-ctx.Done():
		s.logMain.Info("shutdown signal received; draining")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = srv.Shutdown(sctx)
		cancel()
		<-errCh // ListenAndServe has returned ErrServerClosed
	}
	close(stop)
	<-done

	if cerr := s.saveCheckpoint(); cerr != nil {
		s.logCkpt.Error("final checkpoint failed", "err", cerr)
		if err == nil {
			err = cerr
		}
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

// newServer constructs the simulated WAN and an empty (untrained)
// server around it. Until the first retrain, queries are answered by
// the GeoNearest fallback and /healthz reports degraded.
func newServer(seed int64, trainDays int) *server {
	return newServerCfg(seed, trainDays, monitor.DefaultConfig())
}

// newServerCfg is newServer with an explicit monitor configuration,
// so tests can tighten the quality-window geometry.
func newServerCfg(seed int64, trainDays int, mcfg monitor.Config) *server {
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed+10), g, metros)
	cfg := netsim.DefaultConfig(seed + 20)
	cfg.HorizonHours = wan.Hour(400 * 24)
	cfg.OutagesPerLinkYear = 10
	sim := netsim.New(cfg, g, metros, w)

	reg := obsv.NewRegistry()
	if mcfg.LinkMeta == nil {
		mcfg.LinkMeta = linkMeta(sim)
	}
	logger := slog.Default()
	s := &server{
		sim:          sim,
		metros:       metros,
		trainDays:    trainDays,
		reg:          reg,
		met:          newServerMetrics(reg),
		retrainEvery: 1,
		logMain:      logger.With("component", "main"),
		logTrain:     logger.With("component", "train"),
		logHTTP:      logger.With("component", "http"),
		logCkpt:      logger.With("component", "checkpoint"),
		logBundle:    logger.With("component", "bundle"),
		geoFall:      core.NewGeoNearest(sim, metros),
		clock:        realClock,
		rtb:          obsv.NewRuntimeBridge(reg),
		logRing:      obsv.NewLogRing(logRingBytes),
		seed:         seed,
	}
	// The alarm hook must be wired before the monitor exists so no
	// transition into firing can be missed.
	mcfg.OnAlarm = s.onAlarm
	s.mon = monitor.New(mcfg, reg)
	s.reg.SetInfo("tipsy_build_info", buildInfoLabels(seed))
	return s
}

// realClock is the production span clock; tests swap server.clock for
// a counter so span dumps golden.
//
//tipsy:clocksource
func realClock() int64 { return time.Now().UnixNano() }

// buildVersion reports the module version stamped into the binary, or
// "unknown" for plain `go test` / development builds.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// buildInfoLabels renders the tipsy_build_info label set — the
// standard "info metric" idiom: a constant-1 gauge whose labels carry
// the build identity.
func buildInfoLabels(seed int64) string {
	return fmt.Sprintf("go_version=%q,seed=%q,version=%q",
		runtime.Version(), strconv.FormatInt(seed, 10), buildVersion())
}

// initTrace wires the span-tracing subsystem: a flight recorder of
// capacity spans and a tracer recording every sampleEvery-th root
// trace. sampleEvery 0 disables tracing entirely (the nil-tracer
// fast path).
func (s *server) initTrace(sampleEvery uint64, capacity int) {
	if sampleEvery == 0 {
		s.tracer, s.flight = nil, nil
		return
	}
	s.flight = obsv.NewRecorder(capacity)
	s.tracer = obsv.NewTracer(s.flight, obsv.TracerOptions{
		Clock:       func() int64 { return s.clock() },
		SampleEvery: sampleEvery,
	})
}

// linkMeta resolves a link to its metro and peer-AS kind — the
// monitor's quality-slice dimensions.
func linkMeta(sim *netsim.Sim) func(wan.LinkID) (geo.MetroID, string) {
	return func(id wan.LinkID) (geo.MetroID, string) {
		l, ok := sim.Link(id)
		if !ok {
			return 0, "unknown"
		}
		kind := "unknown"
		if as, ok := sim.Graph().AS(l.PeerAS); ok {
			kind = as.Kind.String()
		}
		return l.Metro, kind
	}
}

// buildServer constructs the simulated WAN, bootstraps trainDays of
// telemetry, and trains the first serving model.
func buildServer(seed int64, trainDays int) *server {
	s := newServer(seed, trainDays)
	s.advanceDays(trainDays)
	s.retrain()
	return s
}

// mux routes the API. /metrics always serves the registry's text
// exposition; the pprof handlers are mounted only when -pprof is set,
// keeping the profiling surface off production listeners by default.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/links", s.handleLinks)
	mux.HandleFunc("GET /v1/sample", s.handleSample)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/quality", s.handleQuality)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /debug/bundle", s.handleBundle)
	if s.pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response status code so the request span
// can record it (and mark 5xx responses as errors).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// handler wraps the mux with W3C traceparent propagation: an inbound
// traceparent header parents the request's spans (StartRemote marks
// where the trace entered this process), the response echoes the
// current context so callers can stitch traces across hops, and the
// finished request span — method, path, status — lands in the flight
// recorder.
func (s *server) handler() http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var sp *obsv.Span
		if sc, ok := obsv.ExtractTraceparent(r.Header); ok {
			sp = s.tracer.StartRemote(sc, r.URL.Path)
		} else {
			sp = s.tracer.StartRoot(r.URL.Path)
		}
		sp.SetStr("method", r.Method)
		obsv.InjectTraceparent(w.Header(), sp.Context())
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(sw, r.WithContext(obsv.ContextWithSpan(r.Context(), sp)))
		sp.SetInt("status", int64(sw.code))
		if sw.code >= 500 {
			sp.Error("server error")
		}
		sp.End()
	})
}

// advanceDays simulates n more days of traffic into the record store.
// The drained records double as ground truth: the aggregator streams
// them to the monitor, which joins them against outstanding
// predictions before the simulated clock advances past their hours.
func (s *server) advanceDays(n int) {
	s.advanceDaysTraced(n, nil)
}

// advanceDaysTraced is advanceDays under a parent span: "ingest"
// covers the simulated run (the aggregator's own aggregate_batch /
// drain / truth_join spans parent under the same trace), and
// "truth_close" covers the monitor sealing the drained hours. A nil
// parent (untraced callers, tests) runs the cycle with zero tracing
// overhead.
func (s *server) advanceDaysTraced(n int, parent *obsv.Span) {
	s.mu.Lock()
	from := s.simulated
	s.mu.Unlock()
	to := from + wan.Hour(n*24)
	agg := pipeline.NewAggregatorOn(s.reg, s.sim.GeoIP(), s.sim.DstMetadata)
	agg.SetTruthSink(s.mon)
	agg.SetTrace(s.tracer, parent.Context())
	isp := s.tracer.StartChild(parent, "ingest")
	isp.SetInt("from_hour", int64(from))
	isp.SetInt("to_hour", int64(to))
	s.sim.Run(netsim.RunOptions{From: from, To: to, Sink: agg})
	isp.End()
	recs := agg.Records()
	csp := s.tracer.StartChild(parent, "truth_close")
	s.mon.AdvanceTo(to)
	csp.End()
	s.mu.Lock()
	s.records = append(s.records, recs...)
	s.simulated = to
	// Trim the store to what retraining needs.
	cutoff := to - wan.Hour(s.trainDays*24)
	s.records = dataset.Window(s.records, cutoff, to)
	s.mu.Unlock()
}

// retrain rebuilds the serving ensemble from the sliding window —
// the paper's daily retraining cadence — and checkpoints it.
func (s *server) retrain() {
	s.retrainTraced(nil)
}

// retrainTraced is retrain under a parent span: "retrain" wraps the
// whole rebuild, "train" the model fitting, "shadow_predict" the
// monitor's graded sample, and the checkpoint outcome lands as a span
// event (success) or error status (failure).
func (s *server) retrainTraced(parent *obsv.Span) {
	s.mu.RLock()
	recs := s.records
	now := s.simulated
	s.mu.RUnlock()
	if len(recs) == 0 {
		return
	}
	rsp := s.tracer.StartChild(parent, "retrain")
	tsp := s.tracer.StartChild(rsp, "train")
	hA := core.TrainHistorical(features.SetA, recs, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, recs, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, recs, core.DefaultHistOpts())
	geoModel := core.NewGeoCompletion(hAL, s.sim, s.metros)
	model := core.NewEnsemble(hAP, geoModel, hA)
	s.mu.Lock()
	s.model = model
	s.histA = hA
	s.hAP, s.hAL = hAP, hAL
	s.trainedAt = now
	s.tuples = hAP.NumTuples() + hAL.NumTuples() + hA.NumTuples()
	s.recovered = false
	tuples := s.tuples
	s.mu.Unlock()
	tsp.SetInt("records", int64(len(recs)))
	tsp.SetInt("tuples", int64(tuples))
	tsp.End()
	// The freshly trained model defines the new quality baseline (and
	// disarms any post-withdrawal watch); shadow predictions from it
	// are what next day's telemetry will be joined against.
	s.mon.FreezeBaseline(now)
	ssp := s.tracer.StartChild(rsp, "shadow_predict")
	s.shadowPredict(now, recs, ssp)
	ssp.End()
	s.logTrain.Info("retrained",
		"hour", now, "records", len(recs), "tuples", tuples)
	switch err := s.saveCheckpoint(); {
	case err != nil:
		rsp.Error("checkpoint write failed")
		s.logCkpt.Error("checkpoint failed", "err", err)
	case s.checkpointPath != "":
		rsp.Event("checkpoint_write")
	}
	rsp.End()
}

// shadowSampleCap bounds how many distinct flows each retrain grades.
const shadowSampleCap = 256

// shadowPredict records a deterministic sample of the training
// window's flows as served predictions, so the monitor has joinable
// predictions even when no external client is querying. The sample
// keeps the first sighting of each distinct flow in record order, so
// same-seed runs grade the same flows.
func (s *server) shadowPredict(now wan.Hour, recs []features.Record, parent *obsv.Span) {
	seen := make(map[features.FlowFeatures]bool, shadowSampleCap)
	for _, rec := range recs {
		if seen[rec.Flow] {
			continue
		}
		seen[rec.Flow] = true
		psp := s.tracer.StartChild(parent, "predict")
		preds, rung := s.ladder(core.Query{Flow: rec.Flow, K: 3}, false, psp)
		psp.SetStr("rung", rung)
		psp.End()
		s.mon.RecordPrediction(now, rec.Flow, rung, preds)
		if len(seen) >= shadowSampleCap {
			return
		}
	}
}

// saveCheckpoint atomically persists the trained models. A no-op when
// checkpointing is disabled or nothing is trained yet.
func (s *server) saveCheckpoint() error {
	s.mu.RLock()
	path := s.checkpointPath
	ck := core.Checkpoint{TrainedAt: s.trainedAt}
	if s.hAP != nil {
		ck.Models = []*core.Historical{s.hAP, s.hAL, s.histA}
	}
	s.mu.RUnlock()
	if path == "" || len(ck.Models) == 0 {
		return nil
	}
	return ck.SaveFile(path)
}

// recoverCheckpoint restores the serving models from the checkpoint
// file, rebuilding the ensemble around them, and resumes the
// simulation clock at the checkpointed hour. The recovered model
// serves immediately; the next retrain replaces it.
func (s *server) recoverCheckpoint() error {
	sp := s.tracer.StartRoot("checkpoint_recover")
	defer sp.End()
	ck, err := core.LoadCheckpointFile(s.checkpointPath)
	if err != nil {
		sp.Error("checkpoint load failed")
		return err
	}
	var hA, hAP, hAL *core.Historical
	for _, m := range ck.Models {
		switch m.Set() {
		case features.SetA:
			hA = m
		case features.SetAP:
			hAP = m
		case features.SetAL:
			hAL = m
		}
	}
	if hA == nil || hAP == nil || hAL == nil {
		sp.Error("checkpoint incomplete")
		return fmt.Errorf("checkpoint incomplete: %d models", len(ck.Models))
	}
	model := core.NewEnsemble(hAP, core.NewGeoCompletion(hAL, s.sim, s.metros), hA)
	s.mu.Lock()
	s.model = model
	s.histA = hA
	s.hAP, s.hAL = hAP, hAL
	s.trainedAt = ck.TrainedAt
	if s.simulated < ck.TrainedAt {
		s.simulated = ck.TrainedAt
	}
	s.tuples = hAP.NumTuples() + hAL.NumTuples() + hA.NumTuples()
	s.recovered = true
	s.mu.Unlock()
	return nil
}

// predict walks the degraded-mode ladder: the trained ensemble, then
// the coarse Hist_A model, then the training-free geographic guess.
// It reports which rung answered; the per-rung counters feed /healthz
// and /metrics, and each attempted rung's latency lands in its
// tipsyd_rung_*_ns histogram.
func (s *server) predict(q core.Query) ([]core.Prediction, string) {
	return s.ladder(q, true, nil)
}

// ladder is the fallback walk itself. count=false skips the serving
// counters and latency histograms: monitor shadow samples grade model
// quality and must not skew the client-facing serving metrics. A
// non-nil sp collects a demote_* event for every rung that had a model
// but produced nothing — the span-level record of a degraded answer.
func (s *server) ladder(q core.Query, count bool, sp *obsv.Span) ([]core.Prediction, string) {
	s.mu.RLock()
	model, histA, geoFall := s.model, s.histA, s.geoFall
	s.mu.RUnlock()
	if model != nil {
		start := s.clock()
		preds := model.Predict(q)
		if count {
			s.met.rungEnsemble.Observe(s.clock() - start)
		}
		if len(preds) > 0 {
			if count {
				s.met.ensemble.Inc()
			}
			return preds, "ensemble"
		}
		sp.Event("demote_ensemble")
	}
	if histA != nil {
		start := s.clock()
		preds := histA.Predict(q)
		if count {
			s.met.rungHistorical.Observe(s.clock() - start)
		}
		if len(preds) > 0 {
			if count {
				s.met.historical.Inc()
			}
			return preds, "historical"
		}
		sp.Event("demote_historical")
	}
	if geoFall != nil {
		start := s.clock()
		preds := geoFall.Predict(q)
		if count {
			s.met.rungGeo.Observe(s.clock() - start)
		}
		if len(preds) > 0 {
			if count {
				s.met.geo.Inc()
			}
			return preds, "geo"
		}
		sp.Event("demote_geo")
	}
	if count {
		s.met.none.Inc()
	}
	return nil, "none"
}

// fallbackSnapshot reads the ladder counters for /healthz.
func (s *server) fallbackSnapshot() fallbackCounters {
	return fallbackCounters{
		Ensemble:   s.met.ensemble.Value(),
		Historical: s.met.historical.Value(),
		Geo:        s.met.geo.Value(),
		None:       s.met.none.Value(),
	}
}

// degradedLocked reports whether serving is degraded (no trained
// ensemble, or a model staler than the configured bound) and why.
// Callers hold s.mu.
func (s *server) degradedLocked() (bool, string) {
	if s.model == nil {
		return true, "no trained model; serving from fallback"
	}
	if s.staleAfter > 0 && s.simulated-s.trainedAt > s.staleAfter {
		return true, fmt.Sprintf("model stale: trained at hour %d, telemetry at hour %d", s.trainedAt, s.simulated)
	}
	return false, ""
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	degraded, reason := s.degradedLocked()
	body := map[string]any{
		"status":           "ok",
		"simulated_hour":   s.simulated,
		"model_trained_at": s.trainedAt,
		"model_age_hours":  s.simulated - s.trainedAt,
		"model_ready":      s.model != nil,
		"recovered":        s.recovered,
		"fallbacks":        s.fallbackSnapshot(),
	}
	s.mu.RUnlock()
	// The monitor's verdict annotates health: a model that is fresh
	// but predicting badly is degraded too.
	qDegraded, qReason := s.mon.Degraded()
	body["quality_degraded"] = qDegraded
	if qDegraded {
		body["quality_reason"] = qReason
		if !degraded {
			degraded, reason = true, "prediction quality: "+qReason
		}
	}
	if degraded {
		body["status"] = "degraded"
		body["reason"] = reason
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		if err := json.NewEncoder(w).Encode(body); err != nil {
			s.logHTTP.Error("write response", "err", err)
		}
		return
	}
	s.writeJSON(w, body)
}

// handleQuality serves the monitor's full quality report: windowed
// accuracy, slices, drift vs. baseline, and alarm states.
func (s *server) handleQuality(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.mon.Quality())
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.model == nil {
		http.Error(w, "model not ready", http.StatusServiceUnavailable)
		return
	}
	s.writeJSON(w, map[string]any{
		"name":       s.model.Name(),
		"tuples":     s.tuples,
		"trained_at": s.trainedAt,
		"train_days": s.trainDays,
		"recovered":  s.recovered,
	})
}

func (s *server) handleLinks(w http.ResponseWriter, r *http.Request) {
	type linkJSON struct {
		ID       wan.LinkID `json:"id"`
		Router   string     `json:"router"`
		Metro    uint16     `json:"metro"`
		PeerAS   uint32     `json:"peer_as"`
		Capacity float64    `json:"capacity_bps"`
	}
	var out []linkJSON
	for _, id := range s.sim.Links() {
		l, _ := s.sim.Link(id)
		out = append(out, linkJSON{l.ID, l.Router, uint16(l.Metro), uint32(l.PeerAS), l.Capacity})
	}
	s.writeJSON(w, out)
}

// handleSample returns a few flow tuples present in the training
// window, ready to paste into /v1/predict bodies — handy for demos
// and smoke tests.
func (s *server) handleSample(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	recs := s.records
	s.mu.RUnlock()
	type sample struct {
		SrcAddr string  `json:"src_addr"`
		SrcAS   uint32  `json:"src_as"`
		Region  uint16  `json:"region"`
		Service uint8   `json:"service"`
		Bytes   float64 `json:"bytes"`
	}
	var out []sample
	seen := map[features.FlowFeatures]bool{}
	for _, rec := range recs {
		if seen[rec.Flow] {
			continue
		}
		seen[rec.Flow] = true
		out = append(out, sample{
			SrcAddr: fmt.Sprintf("%d.%d.%d.%d", byte(rec.Flow.Prefix>>24),
				byte(rec.Flow.Prefix>>16), byte(rec.Flow.Prefix>>8), 7),
			SrcAS: uint32(rec.Flow.AS), Region: uint16(rec.Flow.Region),
			Service: uint8(rec.Flow.Type), Bytes: rec.Bytes,
		})
		if len(out) >= 5 {
			break
		}
	}
	s.writeJSON(w, out)
}

// predictRequest mirrors how the CMS queries TIPSY (§4): a set of
// flows (tuples and bytes) plus the links about to be withdrawn.
type predictRequest struct {
	Flows []struct {
		SrcAddr string  `json:"src_addr"`
		SrcAS   uint32  `json:"src_as"`
		Region  uint16  `json:"region"`
		Service uint8   `json:"service"`
		Bytes   float64 `json:"bytes"`
	} `json:"flows"`
	ExcludeLinks []wan.LinkID `json:"exclude_links"`
	K            int          `json:"k"`
}

type predictResponse struct {
	Results []struct {
		Flow int `json:"flow"`
		// Model names the ladder rung that answered this flow:
		// "ensemble", "historical", "geo", or "none".
		Model string `json:"model"`
		Links []struct {
			Link  wan.LinkID `json:"link"`
			Frac  float64    `json:"frac"`
			Bytes float64    `json:"bytes"`
		} `json:"links"`
	} `json:"results"`
	// Shifted aggregates predicted bytes per target link across all
	// queried flows — the number the CMS compares against capacity.
	Shifted map[wan.LinkID]float64 `json:"shifted"`
}

// handlePredict serves the per-request prediction path — the
// latency-sensitive endpoint, so its closure is allocation-budgeted.
//
//tipsy:hotpath
func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	s.met.requests.Inc()
	// Trace the request's stages two ways: the stage tracer feeds the
	// per-stage latency histograms /metrics exports, and real spans —
	// parented under the request span handler() started — land in the
	// flight recorder. Both run off s.clock so fake-clock tests golden.
	tr := obsv.NewTraceClock(s.clock)
	rsp := obsv.SpanFromContext(r.Context())
	fsp := s.tracer.StartChild(rsp, "feature_encode")
	excluded := make(map[wan.LinkID]bool, len(req.ExcludeLinks))
	for _, l := range req.ExcludeLinks {
		excluded[l] = true
	}
	flows := make([]features.FlowFeatures, len(req.Flows))
	for i, f := range req.Flows {
		addr, err := parseIPv4(f.SrcAddr)
		if err != nil {
			fsp.Error("bad address")
			fsp.End()
			http.Error(w, fmt.Sprintf("flow %d: %v", i, err), http.StatusBadRequest)
			return
		}
		prefix := bgp.Slash24(addr)
		flows[i] = features.FlowFeatures{
			AS: bgp.ASN(f.SrcAS), Prefix: prefix, Loc: s.sim.GeoIP().Lookup(prefix),
			Region: wan.Region(f.Region), Type: wan.ServiceType(f.Service),
		}
	}
	fsp.SetInt("flows", int64(len(req.Flows)))
	fsp.End()
	tr.Mark("feature_encode")
	s.mu.RLock()
	now := s.simulated
	s.mu.RUnlock()
	resp := predictResponse{Shifted: make(map[wan.LinkID]float64)}
	psp := s.tracer.StartChild(rsp, "predict")
	for i, f := range req.Flows {
		preds, rung := s.ladder(core.Query{
			Flow: flows[i], K: req.K,
			Exclude: func(l wan.LinkID) bool { return excluded[l] },
		}, true, psp)
		// Feed the quality monitor — but only unconstrained queries:
		// what-if queries that exclude links are answered against a
		// counterfactual topology and would skew the joined accuracy.
		if len(req.ExcludeLinks) == 0 {
			s.mon.RecordPrediction(now, flows[i], rung, preds)
		}
		var result struct {
			Flow  int    `json:"flow"`
			Model string `json:"model"`
			Links []struct {
				Link  wan.LinkID `json:"link"`
				Frac  float64    `json:"frac"`
				Bytes float64    `json:"bytes"`
			} `json:"links"`
		}
		result.Flow = i
		result.Model = rung
		for _, p := range preds {
			result.Links = append(result.Links, struct {
				Link  wan.LinkID `json:"link"`
				Frac  float64    `json:"frac"`
				Bytes float64    `json:"bytes"`
			}{p.Link, p.Frac, p.Frac * f.Bytes})
			resp.Shifted[p.Link] += p.Frac * f.Bytes
		}
		resp.Results = append(resp.Results, result)
	}
	psp.SetInt("flows", int64(len(req.Flows)))
	psp.End()
	tr.Mark("predict")
	tr.Publish(s.reg, "tipsyd_predict")
	s.writeJSON(w, resp)
}

func parseIPv4(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	if a|b|c|d < 0 || a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logHTTP.Error("write response", "err", err)
	}
}

// handleMetrics samples the runtime bridge (GC pauses, heap,
// goroutines, scheduler latency) and serves the registry's text
// exposition, so every scrape carries fresh runtime gauges.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.rtb.Sample()
	s.reg.Handler().ServeHTTP(w, r)
}

// handleTrace dumps the flight recorder. ?trace=<32 hex digits>
// filters to one trace; ?format=chrome emits Chrome trace_event JSON
// loadable in about:tracing / Perfetto.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	var recs []obsv.SpanRecord
	if q := r.URL.Query().Get("trace"); q != "" {
		id, ok := obsv.ParseTraceID(q)
		if !ok {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		recs = s.flight.TraceSpans(id)
	} else {
		recs = s.flight.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	var err error
	if r.URL.Query().Get("format") == "chrome" {
		err = obsv.WriteSpanTraceEvents(w, recs)
	} else {
		err = obsv.WriteSpansJSON(w, recs)
	}
	if err != nil {
		s.logHTTP.Error("write trace dump", "err", err)
	}
}

// handleBundle writes a diagnostic bundle on demand, verifies it the
// way an operator's tooling would, and returns its path and manifest.
func (s *server) handleBundle(w http.ResponseWriter, r *http.Request) {
	dir, err := s.writeBundle("manual")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	man, err := bundle.Verify(dir)
	if err != nil {
		http.Error(w, fmt.Sprintf("bundle failed verification: %v", err), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, map[string]any{"dir": dir, "manifest": man})
}

// onAlarm is the monitor's alarm hook: every transition into firing
// snapshots a diagnostic bundle, so the spans, metrics, and logs that
// led up to the incident are preserved even if the operator only
// looks hours later.
func (s *server) onAlarm(st monitor.AlarmStatus) {
	if s.bundleDir == "" {
		s.logBundle.Warn("alarm fired but bundles disabled", "alarm", st.Name)
		return
	}
	if _, err := s.writeBundle("alarm-" + st.Name); err != nil {
		s.logBundle.Error("bundle write failed", "alarm", st.Name, "err", err)
	}
}

// writeBundle snapshots the daemon's diagnostic state into a new
// bundle directory under s.bundleDir and returns its path. Writes are
// serialized: concurrent alarms and manual requests queue rather than
// interleave, and bundleSeq keeps names unique even under a frozen
// fake clock.
func (s *server) writeBundle(reason string) (string, error) {
	if s.bundleDir == "" {
		return "", errors.New("bundle directory disabled")
	}
	s.bundleMu.Lock()
	defer s.bundleMu.Unlock()
	s.bundleSeq++
	now := s.clock()
	// Snapshot the flight recorder and quality report once, up front,
	// so every section of the bundle describes the same instant.
	spans := s.flight.Snapshot()
	quality := s.mon.Quality()
	build := s.buildManifest()
	writeIndented := func(v any) func(io.Writer) error {
		return func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		}
	}
	sections := []bundle.Section{
		{Name: "metrics.prom", Write: func(w io.Writer) error {
			s.rtb.Sample()
			s.reg.WriteText(w)
			return nil
		}},
		{Name: "quality.json", Write: writeIndented(quality)},
		{Name: "spans.json", Write: func(w io.Writer) error {
			return obsv.WriteSpansJSON(w, spans)
		}},
		{Name: "trace_events.json", Write: func(w io.Writer) error {
			return obsv.WriteSpanTraceEvents(w, spans)
		}},
		{Name: "log_tail.txt", Write: func(w io.Writer) error {
			_, err := w.Write(s.logRing.Tail())
			return err
		}},
		{Name: "heap.pprof", Write: func(w io.Writer) error {
			return rpprof.Lookup("heap").WriteTo(w, 0)
		}},
		{Name: "goroutine.pprof", Write: func(w io.Writer) error {
			return rpprof.Lookup("goroutine").WriteTo(w, 0)
		}},
		{Name: "build.json", Write: writeIndented(build)},
	}
	name := fmt.Sprintf("bundle-%d-%04d-%s", now, s.bundleSeq, sanitizeReason(reason))
	dir, err := bundle.Write(s.bundleDir, name, reason, now, build, sections)
	if err != nil {
		return "", err
	}
	s.met.bundles.Inc()
	s.logBundle.Info("diagnostic bundle written", "dir", dir, "reason", reason)
	return dir, nil
}

// buildManifest collects the build/config identity embedded in every
// bundle (build.json and the manifest's build map) — enough to answer
// "what exactly was running" from the bundle alone.
func (s *server) buildManifest() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return map[string]string{
		"go_version":      runtime.Version(),
		"goos":            runtime.GOOS,
		"goarch":          runtime.GOARCH,
		"version":         buildVersion(),
		"seed":            strconv.FormatInt(s.seed, 10),
		"train_days":      strconv.Itoa(s.trainDays),
		"simulated_hour":  strconv.FormatInt(int64(s.simulated), 10),
		"trained_at_hour": strconv.FormatInt(int64(s.trainedAt), 10),
		"checkpoint":      s.checkpointPath,
	}
}

// sanitizeReason makes an alarm name safe as a path component:
// lowercase alphanumerics, dash, and underscore, capped at 40 bytes.
func sanitizeReason(reason string) string {
	b := []byte(reason)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		case c >= 'A' && c <= 'Z':
			b[i] = c + 'a' - 'A'
		default:
			b[i] = '_'
		}
	}
	if len(b) > 40 {
		b = b[:40]
	}
	return string(b)
}
