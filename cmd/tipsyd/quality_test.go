package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/monitor"
	"tipsy/internal/wan"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

func simHour(s *server) wan.Hour {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.simulated
}

// withdrawTopPredicted withdraws each workload flow's anycast prefix
// from the model's top two predicted links — the congestion
// mitigation system's bulk traffic shift, the event the paper shows
// collapsing prediction accuracy until the next retrain.
func withdrawTopPredicted(s *server) {
	w := s.sim.Workload()
	for i := range w.Flows {
		f := &w.Flows[i]
		ff := features.FlowFeatures{
			AS: f.SrcAS, Prefix: f.SrcPrefix,
			Loc:    s.sim.GeoIP().Lookup(f.SrcPrefix),
			Region: f.DstRegion, Type: f.DstType,
		}
		preds, _ := s.ladder(core.Query{Flow: ff, K: 3}, false, nil)
		for j, p := range preds {
			if j >= 2 {
				break // leave each flow an ingress path
			}
			s.sim.Withdraw(p.Link, s.sim.FlowPrefix(f))
		}
	}
}

// runQualityScenario drives the daemon through the withdrawal
// lifecycle — bootstrap, healthy graded day, mass withdrawal under a
// stale model, re-announce + retrain — invoking check at each named
// stage. Every step is a pure function of the seed.
func runQualityScenario(t *testing.T, seed int64, check func(stage string, s *server)) *server {
	t.Helper()
	mcfg := monitor.DefaultConfig()
	mcfg.WindowHours = 24
	mcfg.JoinHorizonHours = 24
	mcfg.MinGroups = 10
	mcfg.FireAfter = 2
	mcfg.ClearAfter = 2
	s := newServerCfg(seed, 4, mcfg)
	s.advanceDays(4)
	s.retrain()

	// A healthy day of joins establishes the baseline at retrain.
	s.advanceDays(1)
	s.retrain()
	if check != nil {
		check("healthy", s)
	}

	// The withdrawal lands mid-interval: the serving model goes stale
	// against the shifted traffic for a full day.
	withdrawTopPredicted(s)
	s.mon.NoteWithdrawal(simHour(s))
	s.advanceDays(1)
	if check != nil {
		check("collapsed", s)
	}

	// Mitigation ends: prefixes re-announced, model retrained (the
	// daemon's alarm response), and a day of joins under the fresh
	// model clears the alarms.
	for _, wd := range s.sim.Withdrawals() {
		s.sim.Announce(wd.Link, wd.Prefix)
	}
	s.retrain()
	s.advanceDays(1)
	if check != nil {
		check("recovered", s)
	}
	return s
}

func qualityReport(t *testing.T, s *server) monitor.QualityReport {
	t.Helper()
	rr := get(t, s, "/debug/quality")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/quality status %d", rr.Code)
	}
	var q monitor.QualityReport
	if err := json.Unmarshal(rr.Body.Bytes(), &q); err != nil {
		t.Fatalf("/debug/quality not JSON: %v\n%s", err, rr.Body)
	}
	return q
}

func alarmFiring(q monitor.QualityReport, name string) bool {
	for _, a := range q.Alarms {
		if a.Name == name {
			return a.Firing
		}
	}
	return false
}

// TestQualityScenarioHTTP is the acceptance scenario over the HTTP
// surface: the post-withdrawal collapse fires alarms visible on
// /debug/quality and /metrics and degrades /healthz, and recovery
// clears all three.
func TestQualityScenarioHTTP(t *testing.T) {
	runQualityScenario(t, 17, func(stage string, s *server) {
		q := qualityReport(t, s)
		metrics := get(t, s, "/metrics").Body.String()
		hrr := get(t, s, "/healthz")
		var health map[string]any
		if err := json.Unmarshal(hrr.Body.Bytes(), &health); err != nil {
			t.Fatalf("%s: healthz not JSON: %v", stage, err)
		}

		switch stage {
		case "healthy":
			if q.Window.Groups < 10 {
				t.Fatalf("healthy: only %d joined groups", q.Window.Groups)
			}
			if q.Baseline.Top3 < 0.5 {
				t.Fatalf("healthy: baseline top3 %.3f too weak", q.Baseline.Top3)
			}
			for _, a := range q.Alarms {
				if a.Firing {
					t.Errorf("healthy: alarm %s firing", a.Name)
				}
			}
			if hrr.Code != http.StatusOK || health["quality_degraded"] != false {
				t.Errorf("healthy: healthz %d quality_degraded=%v", hrr.Code, health["quality_degraded"])
			}

		case "collapsed":
			if !alarmFiring(q, monitor.AlarmPostWithdrawal) {
				t.Errorf("collapsed: post_withdrawal not firing on /debug/quality: %+v", q.Alarms)
			}
			if q.PostWithdrawal.Top3 >= q.Baseline.Top3-0.2 {
				t.Errorf("collapsed: post top3 %.3f vs baseline %.3f: no collapse",
					q.PostWithdrawal.Top3, q.Baseline.Top3)
			}
			if v := metricValue(t, metrics, "monitor_alarm_post_withdrawal"); v != 1 {
				t.Errorf("collapsed: monitor_alarm_post_withdrawal = %d on /metrics", v)
			}
			if hrr.Code != http.StatusServiceUnavailable {
				t.Errorf("collapsed: healthz %d, want 503", hrr.Code)
			}
			if health["quality_degraded"] != true {
				t.Errorf("collapsed: quality_degraded = %v", health["quality_degraded"])
			}
			if reason, _ := health["reason"].(string); !strings.Contains(reason, "prediction quality") {
				t.Errorf("collapsed: healthz reason %q lacks quality annotation", reason)
			}

		case "recovered":
			for _, a := range q.Alarms {
				if a.Firing {
					t.Errorf("recovered: alarm %s still firing (%s)", a.Name, a.Reason)
				}
			}
			if q.WithdrawalAt != -1 {
				t.Errorf("recovered: withdrawal watch still armed at hour %d", q.WithdrawalAt)
			}
			if v := metricValue(t, metrics, "monitor_alarm_post_withdrawal"); v != 0 {
				t.Errorf("recovered: monitor_alarm_post_withdrawal = %d on /metrics", v)
			}
			if hrr.Code != http.StatusOK {
				t.Errorf("recovered: healthz %d: %s", hrr.Code, hrr.Body)
			}
		}
	})
}

// TestQualityScenarioDeterministic runs the same seeded scenario
// twice and requires byte-identical /debug/quality payloads, then
// pins the payload against the golden file.
func TestQualityScenarioDeterministic(t *testing.T) {
	body := func() []byte {
		s := runQualityScenario(t, 17, nil)
		return get(t, s, "/debug/quality").Body.Bytes()
	}
	a, b := body(), body()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed scenarios produced different /debug/quality:\n%s\n---\n%s", a, b)
	}

	goldenPath := filepath.Join("testdata", "quality.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, a, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, want) {
		t.Errorf("/debug/quality diverged from golden (run with -update to refresh):\n--- want\n%s--- got\n%s", want, a)
	}
}
