package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"tipsy/internal/core"
	"tipsy/internal/features"
)

// metricValue extracts one scalar metric from /metrics text output.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics output", name)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsEndpoint proves the migrated counters surface on
// /metrics: the pipeline ingest counters from the bootstrap and the
// fallback-ladder rung counters after predictions through both the
// ensemble and the geo fallback.
func TestMetricsEndpoint(t *testing.T) {
	s := smallServer(t, 41)

	// Bootstrap ingested telemetry through the registry-backed
	// aggregator.
	rr := get(t, s, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	if raw := metricValue(t, rr.Body.String(), "pipeline_records_raw_total"); raw <= 0 {
		t.Errorf("pipeline_records_raw_total = %d after bootstrap", raw)
	}

	// One known flow (ensemble rung) and one novel flow (geo rung).
	known := s.records[0].Flow
	s.predict(core.Query{Flow: known, K: 3})
	novel := features.FlowFeatures{AS: 4200000002, Prefix: 0x02030400, Loc: 2, Region: known.Region, Type: known.Type}
	s.predict(core.Query{Flow: novel, K: 3})

	body := get(t, s, "/metrics").Body.String()
	if v := metricValue(t, body, "tipsyd_fallback_ensemble_total"); v != 1 {
		t.Errorf("tipsyd_fallback_ensemble_total = %d, want 1", v)
	}
	if v := metricValue(t, body, "tipsyd_fallback_geo_total"); v != 1 {
		t.Errorf("tipsyd_fallback_geo_total = %d, want 1", v)
	}
	// The rung histograms recorded the attempts: the geo answer first
	// fell through the ensemble and historical rungs.
	for _, name := range []string{"tipsyd_rung_ensemble_ns_count", "tipsyd_rung_historical_ns_count", "tipsyd_rung_geo_ns_count"} {
		if v := metricValue(t, body, name); v < 1 {
			t.Errorf("%s = %d, want >= 1", name, v)
		}
	}
}

// TestPredictPublishesTrace proves a /v1/predict request feeds the
// prediction-path stage histograms.
func TestPredictPublishesTrace(t *testing.T) {
	s := smallServer(t, 42)
	reqBody, _ := json.Marshal(map[string]any{
		"flows": []map[string]any{{
			"src_addr": "11.0.3.7", "src_as": 7, "region": 1, "service": 1, "bytes": 1e6,
		}},
		"k": 3,
	})
	req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(reqBody))
	rr := httptest.NewRecorder()
	s.mux().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rr.Code, rr.Body)
	}
	body := get(t, s, "/metrics").Body.String()
	for _, name := range []string{
		"tipsyd_predict_requests_total",
		"tipsyd_predict_feature_encode_ns_count",
		"tipsyd_predict_predict_ns_count",
		"tipsyd_predict_total_ns_count",
	} {
		if v := metricValue(t, body, name); v != 1 {
			t.Errorf("%s = %d, want 1", name, v)
		}
	}
}

// TestPprofGatedByFlag: the profiling surface exists only when
// enabled.
func TestPprofGatedByFlag(t *testing.T) {
	s := smallServer(t, 43)
	if rr := get(t, s, "/debug/pprof/"); rr.Code != http.StatusNotFound {
		t.Errorf("pprof served without the flag: %d", rr.Code)
	}
	s.pprofEnabled = true
	if rr := get(t, s, "/debug/pprof/"); rr.Code != http.StatusOK {
		t.Errorf("pprof with flag: %d", rr.Code)
	}
}
