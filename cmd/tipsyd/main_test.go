package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

var (
	srvOnce sync.Once
	srv     *server
)

func testServer(t *testing.T) *server {
	t.Helper()
	srvOnce.Do(func() { srv = buildServer(3, 4) })
	if srv == nil {
		t.Fatal("server build failed")
	}
	return srv
}

func get(t *testing.T, s *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	s.mux().ServeHTTP(rr, req)
	return rr
}

func TestHealthEndpoint(t *testing.T) {
	s := testServer(t)
	rr := get(t, s, "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["model_ready"] != true {
		t.Errorf("model not ready after bootstrap: %v", body)
	}
	if body["simulated_hour"].(float64) != 4*24 {
		t.Errorf("simulated hour = %v, want 96", body["simulated_hour"])
	}
}

func TestModelEndpoint(t *testing.T) {
	s := testServer(t)
	rr := get(t, s, "/v1/model")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	var body map[string]any
	json.Unmarshal(rr.Body.Bytes(), &body)
	if body["name"] != "Hist_AP/AL+G/A" {
		t.Errorf("model name %v", body["name"])
	}
	if body["tuples"].(float64) <= 0 {
		t.Error("no tuples reported")
	}
}

func TestLinksEndpoint(t *testing.T) {
	s := testServer(t)
	rr := get(t, s, "/v1/links")
	var links []map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &links); err != nil {
		t.Fatal(err)
	}
	if len(links) != s.sim.NumLinks() {
		t.Errorf("returned %d links, sim has %d", len(links), s.sim.NumLinks())
	}
	if links[0]["router"] == "" || links[0]["capacity_bps"].(float64) <= 0 {
		t.Errorf("link metadata incomplete: %v", links[0])
	}
}

func TestPredictEndToEnd(t *testing.T) {
	s := testServer(t)
	// Grab a real tuple from the sample endpoint, then ask for a
	// prediction for it — including the exclusion variant.
	rr := get(t, s, "/v1/sample")
	var samples []map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &samples); err != nil || len(samples) == 0 {
		t.Fatalf("sample endpoint: %v / %s", err, rr.Body)
	}
	reqBody, _ := json.Marshal(map[string]any{
		"flows": []map[string]any{{
			"src_addr": samples[0]["src_addr"],
			"src_as":   samples[0]["src_as"],
			"region":   samples[0]["region"],
			"service":  samples[0]["service"],
			"bytes":    1e9,
		}},
		"k": 3,
	})
	req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(reqBody))
	rr = httptest.NewRecorder()
	s.mux().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].Links) == 0 {
		t.Fatalf("no prediction for a known tuple: %s", rr.Body)
	}
	top := resp.Results[0].Links[0].Link

	// Excluding the top link must produce a different answer (or no
	// answer), never the excluded link.
	reqBody, _ = json.Marshal(map[string]any{
		"flows": []map[string]any{{
			"src_addr": samples[0]["src_addr"],
			"src_as":   samples[0]["src_as"],
			"region":   samples[0]["region"],
			"service":  samples[0]["service"],
			"bytes":    1e9,
		}},
		"exclude_links": []uint32{uint32(top)},
		"k":             3,
	})
	req = httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(reqBody))
	rr = httptest.NewRecorder()
	s.mux().ServeHTTP(rr, req)
	resp = predictResponse{} // Unmarshal merges into maps; start clean.
	json.Unmarshal(rr.Body.Bytes(), &resp)
	for _, l := range resp.Results[0].Links {
		if l.Link == top {
			t.Error("excluded link returned")
		}
	}
	if _, ok := resp.Shifted[top]; ok {
		t.Error("excluded link in shifted aggregate")
	}
}

func TestPredictRejectsBadInput(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader([]byte("{not json")))
	rr := httptest.NewRecorder()
	s.mux().ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", rr.Code)
	}
	body, _ := json.Marshal(map[string]any{
		"flows": []map[string]any{{"src_addr": "not-an-ip", "src_as": 1}},
	})
	req = httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
	rr = httptest.NewRecorder()
	s.mux().ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bad address: status %d", rr.Code)
	}
}

func TestRetrainAdvancesModel(t *testing.T) {
	s := testServer(t)
	before := s.trainedAt
	s.advanceDays(1)
	s.retrain()
	if s.trainedAt != before+24 {
		t.Errorf("trainedAt %d -> %d, want +24", before, s.trainedAt)
	}
	// The sliding window keeps only trainDays of records.
	if len(s.records) == 0 {
		t.Fatal("record store empty after retrain")
	}
	cutoff := s.simulated - 24*4
	for _, r := range s.records {
		if r.Hour < cutoff {
			t.Fatalf("record at hour %d survived the %d cutoff", r.Hour, cutoff)
		}
	}
}

func TestParseIPv4(t *testing.T) {
	if v, err := parseIPv4("11.0.3.7"); err != nil || v != 0x0b000307 {
		t.Errorf("parseIPv4 = %x, %v", v, err)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.999", "a.b.c.d"} {
		if _, err := parseIPv4(bad); err == nil {
			t.Errorf("%q should not parse", bad)
		}
	}
}
