package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tipsy/internal/features"
)

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		ok   bool
	}{
		{"11.0.3.7", 0x0b000307, true},
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"256.1.1.1", 0, false},
		{"1.2.3", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
	}
	for _, c := range cases {
		got, err := parseIPv4(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("parseIPv4(%q) = %x, %v", c.in, got, err)
		}
	}
}

func TestParseSet(t *testing.T) {
	for in, want := range map[string]features.Set{
		"A": features.SetA, "ap": features.SetAP, "Al": features.SetAL,
	} {
		got, err := parseSet(in)
		if err != nil || got != want {
			t.Errorf("parseSet(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSet("APL"); err == nil {
		t.Error("APL should be rejected (equivalent to AP, not a separate set)")
	}
}

// TestCLIWorkflow exercises the whole command surface end to end on a
// tiny simulation: simulate -> info -> train -> eval -> suspicious ->
// depeer. Output goes to files in a temp dir; the commands run in
// process.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bundle := filepath.Join(dir, "t.tipsy")
	model := filepath.Join(dir, "m.tipsy")

	if err := cmdSimulate([]string{"-seed", "9", "-days", "5", "-o", bundle}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if _, err := os.Stat(bundle); err != nil {
		t.Fatalf("bundle missing: %v", err)
	}
	if err := cmdInfo([]string{"-i", bundle}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdTrain([]string{"-i", bundle, "-set", "AP", "-to-hour", "96", "-o", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdEval([]string{"-i", bundle, "-train-days", "4"}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := cmdSuspicious([]string{"-i", bundle, "-train-days", "4"}); err != nil {
		t.Fatalf("suspicious: %v", err)
	}
	if err := cmdDepeer([]string{"-i", bundle, "-train-days", "4"}); err != nil {
		t.Fatalf("depeer: %v", err)
	}
	// Errors surface cleanly for missing files.
	if err := cmdInfo([]string{"-i", filepath.Join(dir, "missing")}); err == nil {
		t.Error("missing bundle should error")
	}
	if err := cmdTrain([]string{"-i", bundle, "-from-hour", "500", "-to-hour", "501", "-o", model}); err == nil ||
		!strings.Contains(err.Error(), "no records") {
		t.Errorf("empty window should error, got %v", err)
	}
}
