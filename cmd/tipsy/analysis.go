package main

import (
	"fmt"

	"tipsy/internal/analysis"
	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// cmdSuspicious implements 'tipsy suspicious': train on the first
// part of a bundle, then flag arrivals in the rest that the model
// considers (nearly) impossible — the paper's §8 spoofed-traffic use.
func cmdSuspicious(args []string) error {
	fs := newFlagSet("suspicious")
	in := fs.String("i", "telemetry.tipsy", "telemetry bundle path")
	trainDays := fs.Int("train-days", 8, "training window length in days")
	maxLikelihood := fs.Float64("max-likelihood", 0.001, "flag arrivals at or below this predicted probability")
	minKm := fs.Float64("min-km", 3000, "minimum source-to-link distance to flag (0 disables)")
	limit := fs.Int("n", 15, "show top N findings")
	fs.Parse(args)

	b, err := loadBundle(*in)
	if err != nil {
		return err
	}
	split := wan.Hour(*trainDays * 24)
	train := dataset.Window(b.Records, 0, split)
	rest := dataset.Window(b.Records, split, 1<<30)
	if len(train) == 0 || len(rest) == 0 {
		return fmt.Errorf("split at day %d leaves an empty window", *trainDays)
	}
	model := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	table := wan.NewTable(b.Links)
	opts := analysis.SuspiciousOptions{
		MaxLikelihood: *maxLikelihood,
		MinBytes:      1e6,
		MinDistanceKm: *minKm,
	}
	found := analysis.FindSuspicious(model, rest, table, geo.World(), opts)
	fmt.Printf("scanned %d records against %d trained tuples\n", len(rest), model.NumTuples())
	fmt.Print(analysis.FormatSuspicious(found, table, *limit))
	return nil
}

// cmdDepeer implements 'tipsy depeer': rank peers by how dispensable
// their links are (§8's de-peering analysis).
func cmdDepeer(args []string) error {
	fs := newFlagSet("depeer")
	in := fs.String("i", "telemetry.tipsy", "telemetry bundle path")
	trainDays := fs.Int("train-days", 8, "training window length in days")
	maxShare := fs.Float64("max-share", 0.05, "skip peers carrying more than this share of bytes")
	limit := fs.Int("n", 10, "show top N candidates")
	fs.Parse(args)

	b, err := loadBundle(*in)
	if err != nil {
		return err
	}
	split := wan.Hour(*trainDays * 24)
	train := dataset.Window(b.Records, 0, split)
	if len(train) == 0 {
		return fmt.Errorf("no training records before day %d", *trainDays)
	}
	model := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	table := wan.NewTable(b.Links)
	cands := analysis.DePeeringCandidates(model, train, table, *maxShare)
	fmt.Printf("%-10s %6s %14s %14s\n", "peer", "links", "bytes", "redirectable")
	for i, c := range cands {
		if i >= *limit {
			break
		}
		fmt.Printf("%-10v %6d %14.3e %13.1f%%\n", c.Peer, c.Links, c.Bytes, c.Redirectable*100)
	}
	if len(cands) == 0 {
		fmt.Println("(no candidates under the share cap)")
	}
	return nil
}
