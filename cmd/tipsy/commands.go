package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

func cmdSimulate(args []string) error {
	fs := newFlagSet("simulate")
	seed := fs.Int64("seed", 1, "simulation seed")
	days := fs.Int("days", 11, "days of telemetry to produce")
	scale := fs.String("scale", "small", "environment scale: small | full")
	out := fs.String("o", "telemetry.tipsy", "output bundle path")
	fs.Parse(args)

	metros := geo.World()
	var topoCfg topology.GenConfig
	var trafCfg traffic.Config
	if *scale == "full" {
		topoCfg = topology.DefaultGenConfig(*seed)
		trafCfg = traffic.DefaultConfig(*seed + 10)
	} else {
		topoCfg = topology.TestGenConfig(*seed)
		trafCfg = traffic.TestConfig(*seed + 10)
		trafCfg.NFlows = 3000
	}
	simCfg := netsim.DefaultConfig(*seed + 20)
	simCfg.HorizonHours = wan.Hour(*days * 24)
	simCfg.OutagesPerLinkYear = 10

	g := topology.Generate(topoCfg, metros)
	w := traffic.Generate(trafCfg, g, metros)
	sim := netsim.New(simCfg, g, metros, w)

	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	sim.Run(netsim.RunOptions{From: 0, To: wan.Hour(*days * 24), Sink: agg})
	recs := agg.Records()

	var links []wan.Link
	for _, id := range sim.Links() {
		l, _ := sim.Link(id)
		links = append(links, l)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.Save(f, &dataset.File{
		Records:    recs,
		Links:      links,
		Anycast:    w.Anycast,
		GeoEntries: sim.GeoIP().Entries(),
	}); err != nil {
		return err
	}
	fmt.Printf("simulated %d days: %d ASes, %d links, %d flows -> %d aggregated records in %s\n",
		*days, g.Len(), sim.NumLinks(), len(w.Flows), len(recs), *out)
	return nil
}

func loadBundle(path string) (*dataset.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Load(f)
}

func cmdInfo(args []string) error {
	fs := newFlagSet("info")
	in := fs.String("i", "telemetry.tipsy", "telemetry bundle path")
	sample := fs.Int("sample", 0, "print N sample flow tuples usable with 'tipsy predict'")
	fs.Parse(args)
	b, err := loadBundle(*in)
	if err != nil {
		return err
	}
	if *sample > 0 {
		seen := map[features.FlowFeatures]bool{}
		for _, r := range b.Records {
			if seen[r.Flow] {
				continue
			}
			seen[r.Flow] = true
			fmt.Printf("tipsy predict -src %s -as %d -region %d -svc %d\n",
				bgp.FormatIP(r.Flow.Prefix+7), uint32(r.Flow.AS), r.Flow.Region, r.Flow.Type)
			if len(seen) >= *sample {
				break
			}
		}
		return nil
	}
	var from, to wan.Hour
	var bytes float64
	for i, r := range b.Records {
		if i == 0 || r.Hour < from {
			from = r.Hour
		}
		if r.Hour >= to {
			to = r.Hour + 1
		}
		bytes += r.Bytes
	}
	c := features.Cardinalities(b.Records)
	fmt.Printf("records:  %d over hours [%d, %d) (%.1f days)\n", len(b.Records), from, to, float64(to-from)/24)
	fmt.Printf("bytes:    %.3e\n", bytes)
	fmt.Printf("links:    %d across %d anycast prefixes\n", len(b.Links), len(b.Anycast))
	fmt.Printf("features: %d ASes, %d /24s, %d locations, %d regions, %d types\n",
		c.AS, c.Prefix, c.Loc, c.Region, c.Type)
	fmt.Printf("tuples:   A=%d AP=%d AL=%d\n", c.TuplesA, c.TuplesAP, c.TuplesAL)
	return nil
}

func parseSet(s string) (features.Set, error) {
	switch strings.ToUpper(s) {
	case "A":
		return features.SetA, nil
	case "AP":
		return features.SetAP, nil
	case "AL":
		return features.SetAL, nil
	}
	return 0, fmt.Errorf("unknown feature set %q (want A, AP, or AL)", s)
}

func cmdTrain(args []string) error {
	fs := newFlagSet("train")
	in := fs.String("i", "telemetry.tipsy", "telemetry bundle path")
	setName := fs.String("set", "AP", "feature set: A | AP | AL")
	fromHour := fs.Int("from-hour", 0, "training window start (hours)")
	toHour := fs.Int("to-hour", 1<<30, "training window end (hours, exclusive)")
	out := fs.String("o", "model.tipsy", "output model path")
	fs.Parse(args)

	b, err := loadBundle(*in)
	if err != nil {
		return err
	}
	set, err := parseSet(*setName)
	if err != nil {
		return err
	}
	recs := dataset.Window(b.Records, wan.Hour(*fromHour), wan.Hour(*toHour))
	if len(recs) == 0 {
		return fmt.Errorf("no records in window [%d, %d)", *fromHour, *toHour)
	}
	h := core.TrainHistorical(set, recs, core.DefaultHistOpts())
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := h.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained %s on %d records: %d tuples, %d entries -> %s\n",
		h.Name(), len(recs), h.NumTuples(), h.NumEntries(), *out)
	return nil
}

func cmdPredict(args []string) error {
	fs := newFlagSet("predict")
	in := fs.String("i", "telemetry.tipsy", "telemetry bundle path (for link metadata and Geo-IP)")
	modelPath := fs.String("model", "model.tipsy", "trained model path")
	src := fs.String("src", "", "source IPv4 address (dotted quad)")
	asn := fs.Uint("as", 0, "source AS number")
	region := fs.Uint("region", 0, "destination region id")
	svc := fs.Uint("svc", 1, "destination service type id")
	k := fs.Int("k", 3, "how many links to predict")
	exclude := fs.String("exclude", "", "comma-separated link IDs to treat as unavailable")
	bytes := fs.Float64("bytes", 1e9, "flow volume to split across links")
	geoComplete := fs.Bool("geo", false, "apply geographic-distance completion (+G)")
	fs.Parse(args)

	b, err := loadBundle(*in)
	if err != nil {
		return err
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	hist, err := core.LoadHistorical(mf)
	if err != nil {
		return err
	}
	srcAddr, err := parseIPv4(*src)
	if err != nil {
		return err
	}
	metros := geo.World()
	geoip := geo.NewGeoIPFromEntries(metros, b.GeoEntries)
	prefix := bgp.Slash24(srcAddr)
	flow := features.FlowFeatures{
		AS:     bgp.ASN(*asn),
		Prefix: prefix,
		Loc:    geoip.Lookup(prefix),
		Region: wan.Region(*region),
		Type:   wan.ServiceType(*svc),
	}
	excluded := map[wan.LinkID]bool{}
	if *exclude != "" {
		for _, part := range strings.Split(*exclude, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -exclude entry %q", part)
			}
			excluded[wan.LinkID(id)] = true
		}
	}
	var model core.Predictor = hist
	table := wan.NewTable(b.Links)
	if *geoComplete {
		model = core.NewGeoCompletion(hist, table, metros)
	}
	preds := model.Predict(core.Query{
		Flow: flow, K: *k,
		Exclude: func(l wan.LinkID) bool { return excluded[l] },
	})
	if len(preds) == 0 {
		fmt.Println("no prediction: flow tuple unseen in training (try a coarser feature set or -geo)")
		return nil
	}
	fmt.Printf("flow %v %s/24 loc%d -> region %d %v: predicted ingress links:\n",
		flow.AS, bgp.FormatIP(flow.Prefix), flow.Loc, flow.Region, flow.Type)
	for i, p := range preds {
		l, ok := table.Link(p.Link)
		router, peer := "?", "?"
		if ok {
			router = l.Router
			peer = l.PeerAS.String()
		}
		fmt.Printf("  %d. link %-5d %-14s peer %-9s %5.1f%%  (%.3e bytes)\n",
			i+1, p.Link, router, peer, p.Frac*100, p.Frac**bytes)
	}
	return nil
}

func parseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var out uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		out = out<<8 | uint32(v)
	}
	return out, nil
}

func cmdEval(args []string) error {
	fs := newFlagSet("eval")
	in := fs.String("i", "telemetry.tipsy", "telemetry bundle path")
	trainDays := fs.Int("train-days", 8, "training window length in days")
	fs.Parse(args)

	b, err := loadBundle(*in)
	if err != nil {
		return err
	}
	split := wan.Hour(*trainDays * 24)
	train := dataset.Window(b.Records, 0, split)
	test := dataset.Window(b.Records, split, 1<<30)
	if len(train) == 0 || len(test) == 0 {
		return fmt.Errorf("split at hour %d leaves an empty window (train=%d test=%d records)",
			split, len(train), len(test))
	}
	table := wan.NewTable(b.Links)
	metros := geo.World()
	hA := core.TrainHistorical(features.SetA, train, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, train, core.DefaultHistOpts())
	models := []core.Predictor{
		hA, hAP, hAL,
		core.NewGeoCompletion(hAL, table, metros),
		core.NewEnsemble(hAP, hAL, hA),
		core.NewEnsemble(hAL, hAP, hA),
	}
	var rows []eval.AccuracyRow
	for _, set := range []features.Set{features.SetA, features.SetAP, features.SetAL} {
		o := core.NewOracle(set, test)
		acc := eval.Accuracy(o, test, eval.Options{Ks: eval.StandardKs, GroupBy: eval.GroupBySet(set)})
		rows = append(rows, eval.AccuracyRow{Model: o.Name(), Oracle: true,
			Top1: acc[1] * 100, Top2: acc[2] * 100, Top3: acc[3] * 100})
		for _, m := range models {
			if h, ok := m.(*core.Historical); ok && h.Set() == set {
				acc := eval.Accuracy(m, test, eval.Options{Ks: eval.StandardKs})
				rows = append(rows, eval.AccuracyRow{Model: m.Name(),
					Top1: acc[1] * 100, Top2: acc[2] * 100, Top3: acc[3] * 100})
			}
		}
	}
	for _, m := range models {
		if _, ok := m.(*core.Historical); !ok {
			acc := eval.Accuracy(m, test, eval.Options{Ks: eval.StandardKs})
			rows = append(rows, eval.AccuracyRow{Model: m.Name(),
				Top1: acc[1] * 100, Top2: acc[2] * 100, Top3: acc[3] * 100})
		}
	}
	fmt.Print(eval.FormatAccuracyTable(
		fmt.Sprintf("Overall prediction accuracy (%d train days, %d test records)", *trainDays, len(test)),
		rows))
	return nil
}
