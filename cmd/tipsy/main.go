// Command tipsy is the command-line interface to the TIPSY library:
//
//	tipsy simulate -seed 1 -days 28 -scale small -o telemetry.tipsy
//	tipsy info     -i telemetry.tipsy
//	tipsy train    -i telemetry.tipsy -set AP -to-hour 504 -o model.tipsy
//	tipsy predict  -i telemetry.tipsy -model model.tipsy -src 11.0.3.7 -as 10007 -region 30 -svc 2
//	tipsy eval     -i telemetry.tipsy -train-days 21
//
// simulate runs the Internet+WAN substrate and exports aggregated
// telemetry; train builds a Historical model on a window of it;
// predict answers single what-if queries; eval reproduces the
// headline accuracy table on a train/test split.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "suspicious":
		err = cmdSuspicious(os.Args[2:])
	case "depeer":
		err = cmdDepeer(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tipsy: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tipsy: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: tipsy <command> [flags]

commands:
  simulate   run the simulated Internet+WAN and export telemetry
  info       summarize a telemetry bundle
  train      train a Historical model on a telemetry window
  predict    predict ingress links for one flow
  eval       train/test split accuracy report
  suspicious flag implausible ingress arrivals (spoofing candidates)
  depeer     rank peers whose links add little unique value

run 'tipsy <command> -h' for flags
`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return fs
}
