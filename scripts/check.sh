#!/usr/bin/env bash
# check.sh — the repository's full verify gate.
#
# Runs, in order: formatting, go vet, build, tipsylint (the project's
# own static-analysis suite: determinism, lock hygiene, lock-guard
# inference / static race lint, wire-encoder safety, goroutine
# hygiene, metrics, hot-path allocation budget),
# the allocation-budget ratchet gate (regenerating the budget must
# reproduce the committed .tipsy-allocbudget.json byte for byte), the
# test suite under the race detector with a total-coverage floor, a
# 15s fuzz pass per protocol decoder, the diagnostic-bundle round
# trip (alarm fires -> bundle written -> CRC-verified), the tipsybench
# quick cycle, and the chaos soak. Everything is stdlib Go; no network access is
# needed.
#
# Usage: scripts/check.sh [-short]
#   -short  skip the race detector (plain `go test`), for quick loops
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
if [[ "${1:-}" == "-short" ]]; then
    short=1
fi

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> tipsylint -stats ./..."
go run ./cmd/tipsylint -stats ./...

echo "==> tipsylint -rules guardedby ./... (static race lint)"
go run ./cmd/tipsylint -rules guardedby ./...

echo "==> tipsylint -rules hotpath ./... (allocation budget)"
go run ./cmd/tipsylint -rules hotpath ./...

echo "==> allocation-budget ratchet (regenerated file must match committed)"
budgettmp=$(mktemp)
go run ./cmd/tipsylint -rules hotpath -update-budget -budget "$budgettmp" ./... >/dev/null
if ! diff -u .tipsy-allocbudget.json "$budgettmp"; then
    rm -f "$budgettmp"
    echo "allocation budget out of date: counts may only change by committing" >&2
    echo "the file regenerated with:" >&2
    echo "    go run ./cmd/tipsylint -rules hotpath -update-budget ./..." >&2
    echo "growing a count means a new allocation landed on a hot path — fix it instead" >&2
    exit 1
fi
rm -f "$budgettmp"

echo "==> tipsylint -suppressions ./... (budget: zero)"
sup=$(go run ./cmd/tipsylint -suppressions ./...)
if [[ -n "$sup" ]]; then
    echo "suppression directives found (the budget is zero):" >&2
    echo "$sup" >&2
    exit 1
fi

# Total statement coverage must not sink below this floor (the suite
# sits around 79-80%; the floor leaves headroom for refactors without
# letting coverage rot).
coverage_floor=75.0
covprofile=$(mktemp)
trap 'rm -f "$covprofile"' EXIT

if [[ $short -eq 1 ]]; then
    echo "==> go test ./... (short: race detector skipped)"
    go test -count=1 -coverprofile="$covprofile" ./...
else
    echo "==> go test -race -count=1 ./..."
    go test -race -count=1 -coverprofile="$covprofile" ./...
fi

echo "==> coverage floor (>= ${coverage_floor}%)"
total=$(go tool cover -func="$covprofile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
echo "    total coverage: ${total}%"
awk -v t="$total" -v f="$coverage_floor" 'BEGIN { exit !(t >= f) }' || {
    echo "coverage ${total}% is below the ${coverage_floor}% floor" >&2
    exit 1
}

echo "==> fuzz quick pass (15s per decoder)"
go test -fuzz=FuzzIPFIXDecode -fuzztime=15s -run '^$' ./internal/ipfix
go test -fuzz=FuzzBMPDecode -fuzztime=15s -run '^$' ./internal/bmp

echo "==> differential decode (compiled path vs reference)"
go test -run 'TestDifferentialDecode|TestDifferentialDecodeFuzzCorpus|TestDifferentialCollectorBatch' \
    -count=1 ./internal/ipfix

echo "==> diagnostic bundle round trip (alarm -> bundle -> CRC verify)"
go test -run 'TestBundleAlarmRoundTrip|TestBundleEndpoint' -count=1 ./cmd/tipsyd

echo "==> tipsybench -quick (twice: second run compared against first)"
benchout=$(mktemp -d)
go run ./cmd/tipsybench -quick -out "$benchout/bench.json"
# Re-run the same seeded cycle and diff: the deterministic fields must
# reproduce exactly (-compare exits non-zero otherwise); timing drift
# only warns (loose tolerance — CI machines are noisy). The ingest
# stage alone gets a hard floor: both runs come from the same machine
# seconds apart, so losing >10% of ingest throughput between them
# means real contention or a pathological regression, not noise.
go run ./cmd/tipsybench -quick -out "$benchout/bench2.json" \
    -compare "$benchout/bench.json" -timing-tol 1.0 -ingest-floor 0.9
rm -rf "$benchout"

echo "==> chaos soak smoke"
go test -run TestChaosSoak -short -count=1 ./internal/chaos

echo "OK"
