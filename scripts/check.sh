#!/usr/bin/env bash
# check.sh — the repository's full verify gate.
#
# Runs, in order: formatting, go vet, build, tipsylint (the project's
# own static-analysis suite: determinism, lock hygiene, wire-encoder
# safety, goroutine hygiene), and the test suite under the race
# detector. Everything is stdlib Go; no network access is needed.
#
# Usage: scripts/check.sh [-short]
#   -short  skip the race detector (plain `go test`), for quick loops
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
if [[ "${1:-}" == "-short" ]]; then
    short=1
fi

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> tipsylint ./..."
go run ./cmd/tipsylint ./...

if [[ $short -eq 1 ]]; then
    echo "==> go test ./... (short: race detector skipped)"
    go test -count=1 ./...
else
    echo "==> go test -race -count=1 ./..."
    go test -race -count=1 ./...
fi

echo "==> chaos soak smoke"
go test -run TestChaosSoak -short -count=1 ./internal/chaos

echo "OK"
